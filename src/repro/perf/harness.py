"""The benchmark harness: runs workloads, emits ``BENCH_publishing.json``.

The report separates the deterministic facts (``ops``, ``events``,
``sim_ms`` — identical for a given seed on every run and every machine)
from the timing facts (``wall_ms``, ``ops_per_sec``, ``events_per_sec``
— machine- and load-dependent). Regression comparison (``--compare``)
works on ``ops_per_sec`` with a tolerance wide enough to ride out CI
noise; determinism checking works on the deterministic facts exactly.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.perf.workloads import WORKLOADS

SCHEMA_VERSION = 1

#: default allowed fractional throughput drop before --compare fails
DEFAULT_TOLERANCE = 0.25


def run_workload(name: str, seed: int, smoke: bool) -> Dict[str, Any]:
    """Run one workload and normalise its result into report shape."""
    fn = WORKLOADS[name]
    start = time.perf_counter()
    raw = fn(seed, smoke)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    # Workloads that time only their measured section report their own
    # wall_ms (engine_churn excludes baseline-run and script-generation
    # time); everything else is timed wall-to-wall here.
    wall_ms = float(raw.pop("wall_ms", elapsed_ms))
    ops = int(raw.pop("ops"))
    events = int(raw.pop("events"))
    sim_ms = float(raw.pop("sim_ms"))
    wall_s = wall_ms / 1000.0
    result: Dict[str, Any] = {
        "name": name,
        "ops": ops,
        "events": events,
        "sim_ms": sim_ms,
        "wall_ms": round(wall_ms, 3),
        "ops_per_sec": round(ops / wall_s, 2) if wall_s > 0 else 0.0,
        "events_per_sec": round(events / wall_s, 2) if wall_s > 0 else 0.0,
    }
    phases = raw.pop("phases", None)
    if phases:
        result["phases"] = {
            pname: {k: (round(v, 3) if isinstance(v, float) else v)
                    for k, v in pdata.items()}
            for pname, pdata in phases.items()
        }
    baseline = raw.pop("baseline", None)
    if baseline:
        result["baseline"] = {
            k: (round(v, 3) if isinstance(v, float) else v)
            for k, v in baseline.items()
        }
    speedup = raw.pop("speedup_vs_baseline", None)
    if speedup is not None:
        result["speedup_vs_baseline"] = round(speedup, 3)
    # whatever workload-specific extras remain ride along verbatim
    for key in sorted(raw):
        value = raw[key]
        result[key] = round(value, 3) if isinstance(value, float) else value
    return result


def run_suite(seed: int = 1983, smoke: bool = False,
              only: Optional[Iterable[str]] = None,
              parallel: Optional[int] = None) -> Dict[str, Any]:
    """Run the selected workloads and assemble the full report.

    ``parallel=N`` (N > 1) shards the workloads over N worker processes
    via :mod:`repro.parallel`. Deterministic facts are unaffected (each
    workload still runs whole in one process); wall-clock figures are
    measured under contention, so use parallel runs for quick checks
    and serial runs for committed baselines.
    """
    names = list(only) if only else list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise KeyError(f"unknown workload(s): {', '.join(unknown)} "
                       f"(known: {', '.join(WORKLOADS)})")
    meta = {
        "seed": seed,
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }
    if parallel is not None and parallel > 1:
        from repro.parallel import perf_tasks, run_tasks
        shards = run_tasks(perf_tasks(names, seed=seed, smoke=smoke),
                           max_workers=parallel)
        workloads = [{**shard["payload"], **shard["timing"]}
                     for shard in shards]
        meta["workers"] = parallel
    else:
        workloads = [run_workload(name, seed, smoke) for name in names]
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "publishing",
        "meta": meta,
        "workloads": workloads,
    }


def compare_reports(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Regression check: list of failures, empty when everything holds.

    A workload regresses when its ``ops_per_sec`` fell more than
    ``tolerance`` (fractional) below the baseline report's figure.
    Workloads present only on one side are skipped — adding a workload
    must not fail CI until its baseline is committed.
    """
    failures: List[str] = []
    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    for work in current.get("workloads", []):
        base = base_by_name.get(work["name"])
        if base is None:
            continue
        base_rate = base.get("ops_per_sec", 0.0)
        if base_rate > 0:
            floor = base_rate * (1.0 - tolerance)
            rate = work.get("ops_per_sec", 0.0)
            if rate < floor:
                failures.append(
                    f"{work['name']}: {rate:.1f} ops/s is more than "
                    f"{tolerance:.0%} below baseline {base_rate:.1f} ops/s")
        # Deterministic digests must match exactly: a changed replay
        # order or event stream is a behavioural break, not noise.
        for key in ("replay_digest", "event_digest"):
            if key in base and key in work and work[key] != base[key]:
                failures.append(
                    f"{work['name']}: {key} changed "
                    f"({base[key]} -> {work[key]}) — deterministic "
                    f"behaviour diverged from the committed baseline")
    return failures


def format_report(report: Dict[str, Any]) -> str:
    """A terminal-friendly table of the report."""
    meta = report["meta"]
    lines = [f"repro perf — mode={meta['mode']} seed={meta['seed']} "
             f"python={meta['python']}"]
    header = (f"{'workload':<20} {'ops':>8} {'wall_ms':>10} "
              f"{'ops/sec':>12} {'events/sec':>12} {'speedup':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for work in report["workloads"]:
        speedup = work.get("speedup_vs_baseline")
        lines.append(
            f"{work['name']:<20} {work['ops']:>8} {work['wall_ms']:>10.1f} "
            f"{work['ops_per_sec']:>12.1f} {work['events_per_sec']:>12.1f} "
            f"{(f'{speedup:.2f}x' if speedup is not None else '-'):>8}")
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def main(seed: int, smoke: bool, output: Optional[str],
         only: Optional[List[str]] = None,
         compare: Optional[str] = None,
         tolerance: float = DEFAULT_TOLERANCE,
         parallel: Optional[int] = None) -> int:
    """CLI entry point shared by ``python -m repro perf``. Returns an
    exit code: 0 on success, 1 on regression vs the compare baseline,
    2 for an unknown ``--workload`` name."""
    if only:
        unknown = [n for n in only if n not in WORKLOADS]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)}",
                  file=sys.stderr)
            print(f"available: {', '.join(WORKLOADS)}", file=sys.stderr)
            return 2
    report = run_suite(seed=seed, smoke=smoke, only=only, parallel=parallel)
    print(format_report(report))
    if output:
        write_report(report, output)
        print(f"wrote {output}")
    if compare:
        with open(compare, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = compare_reports(report, baseline, tolerance)
        if failures:
            print("performance regression detected:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {compare} (tolerance {tolerance:.0%})")
    return 0
