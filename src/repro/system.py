"""`System` — one-call construction of a publishing DEMOS/MP cluster.

Wires together everything the thesis's Figure 3.2 shows: processing
nodes running the DEMOS/MP kernel and system processes, a broadcast
medium the recorder passively listens to, the recorder with its disks
and stable storage, watchdogs, and the recovery manager.

Typical use::

    from repro import System, SystemConfig

    system = System(SystemConfig(nodes=2))
    system.registry.register("my/prog", MyProgram)
    system.boot()
    pid = system.spawn_program("my/prog", node=1)
    system.run(5_000)
    system.crash_node(1)          # fault injection
    system.run(20_000)            # transparent recovery happens here
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.demos.costs import CostModel
from repro.demos.ids import ProcessId, kernel_pid
from repro.demos.kernel import KernelConfig
from repro.demos.kernel_process import KERNEL_PROCESS_IMAGE, KernelProcessProgram
from repro.demos.node import Node
from repro.demos.process import ProgramRegistry
from repro.demos.sysprocs import (
    MS_IMAGE,
    NLS_IMAGE,
    PM_IMAGE,
    MemoryScheduler,
    NamedLinkServer,
    ProcessManager,
)
from repro.errors import ReproError
from repro.net.acking_ethernet import AckingEthernet
from repro.net.ethernet import CsmaEthernet
from repro.net.faults import FaultPlan
from repro.net.frames import DeadLetter
from repro.net.media import Medium, PerfectBroadcast
from repro.net.star import StarHub
from repro.net.token_ring import TokenRing
from repro.net.transport import TransportConfig
from repro.publishing.checkpoints import CheckpointPolicy, install_policy
from repro.publishing.gossip import (
    GossipConfig,
    GossipCoordinator,
    ReceptionLoss,
)
from repro.publishing.recorder import Recorder, RecorderConfig
from repro.publishing.recovery_manager import RecoveryManager
from repro.obs import Observability
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceLog

#: Media selectable by name in :class:`SystemConfig`.
MEDIA = ("broadcast", "acking_ethernet", "csma_ethernet", "star", "token_ring")


@dataclass
class SystemConfig:
    """Cluster-wide configuration."""

    nodes: int = 2
    #: first processing-node id; nodes are numbered consecutively from
    #: here (clusters use disjoint ranges, §6.2)
    first_node_id: int = 1
    publishing: bool = True
    medium: str = "broadcast"
    recorder_node_id: int = 99
    #: recorder shards (cluster.placement): 1 keeps the single §3.3
    #: recorder, byte-identical to the pre-sharding behaviour; >1
    #: splits the node range into contiguous slices, one claim-filtered
    #: recorder + recovery manager per slice, with shard j attached at
    #: ``recorder_node_id + j``
    recorder_shards: int = 1
    #: shard layout policy: "range" (fixed shard count) or "balanced"
    #: (shard count grows with the node count; see cluster.placement)
    placement_policy: str = "range"
    master_seed: int = 1983
    costs: CostModel = field(default_factory=CostModel)
    publish_path: str = "media_tap"
    disks: int = 1
    buffered_writes: bool = True
    #: start NLS / process manager / memory scheduler on this node
    boot_system_processes: bool = True
    services_node: int = 1
    reboot_delay_ms: float = 1000.0
    #: what happens when the watchdog declares a node dead (§4.6's
    #: operator choices): "restart" reboots the same processor; "spare"
    #: swaps in a fresh processor that assumes the failed one's
    #: identity; "none" leaves the node down (recovery stalls until the
    #: operator intervenes via restart_node/spare_takeover).
    reboot_policy: str = "restart"
    watchdog_ping_ms: float = 500.0
    watchdog_timeout_ms: float = 1500.0
    retransmit_timeout_ms: float = 50.0
    #: adaptive retransmission: retries back off exponentially by this
    #: factor (1.0 = the original fixed timer), capped at
    #: ``backoff_max_ms``, with optional multiplicative jitter drawn
    #: from the cluster's named RNG streams (deterministic per
    #: master_seed, but seed-*dependent* — so it defaults off, keeping
    #: fault-free runs on randomness-free media seed-independent)
    backoff_factor: float = 2.0
    backoff_max_ms: float = 2000.0
    backoff_jitter: float = 0.0
    #: transport window per node: 1 = the thesis's stop-and-wait ("only
    #: one unacknowledged message in transit from each processor"); >1
    #: enables the anticipated windowing scheme with receiver-side
    #: reordering (§4.3.3)
    transport_window: int = 1
    loss_rate: float = 0.0
    corruption_rate: float = 0.0
    #: attempts before a guaranteed send becomes a dead letter
    transport_max_retries: int = 1000
    #: automatic checkpoint policy installed on every node at boot:
    #: None, "young", "bound", or "storage" (§3.2.4 / §3.2.3 / §5.1)
    checkpoint_policy: Optional[str] = None
    #: parameters for the chosen policy
    checkpoint_mtbf_ms: float = 60_000.0
    recovery_bound_ms: float = 2_000.0
    #: epidemic repair layer (publishing.gossip): nodes keep bounded
    #: buffers of recent publications, the medium tolerates recorder
    #: misses, and the recorder pulls log holes closed in gossip rounds
    gossip: bool = False
    gossip_buffer_depth: int = 256
    gossip_round_ms: float = 150.0
    gossip_fanout: int = 2
    gossip_max_retries: int = 8
    #: seed-pure loss probability on the recording/repair path (frames
    #: missing every recorder; pull/supply datagrams dropped). Works
    #: with gossip off too — then strict recorder enforcement plus
    #: sender retransmission carries the load (the recorder-only arm
    #: of the reliability-vs-overhead frontier).
    gossip_loss_rate: float = 0.0


class System:
    """A complete simulated publishing cluster."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 registry: Optional[ProgramRegistry] = None,
                 engine: Optional[Engine] = None,
                 recorder_engine: Optional[Engine] = None):
        self.config = config or SystemConfig()
        self.engine = engine or Engine()
        #: when set, the recorder (and its recovery manager, watchdogs,
        #: disks) runs on this engine as its own logical process,
        #: bridged to the cluster medium by zero-lookahead channels
        #: (see repro.publishing.recorder_lp). Requires publishing on a
        #: broadcast medium without gossip; recorder crash/restart is
        #: not supported in this mode.
        self.recorder_engine = recorder_engine
        if recorder_engine is not None:
            if not self.config.publishing:
                raise ReproError(
                    "a recorder LP needs publishing enabled")
            if self.config.medium != "broadcast":
                raise ReproError(
                    "recorder LPs require the broadcast medium "
                    f"(got {self.config.medium!r})")
            if self.config.gossip:
                raise ReproError(
                    "recorder LPs and gossip repair are mutually "
                    "exclusive (gossip pulls run on the cluster engine)")
        #: set by ClusterFederation when this cluster lives in one —
        #: lets chaos actions reach federation-level subjects (gateways)
        self.federation = None
        self.cluster_index: Optional[int] = None
        self.rng = RngStreams(self.config.master_seed)
        #: one instrumentation spine (event bus + metrics registry)
        #: shared by every layer of the cluster
        self.obs = Observability(lambda: self.engine.now)
        self.trace = TraceLog(bus=self.obs.bus, scope="sim")
        self.obs.registry.gauge_fn("sim.now", lambda: self.engine.now)
        self.obs.registry.gauge_fn("sim.events_fired",
                                   lambda: self.engine.events_fired)
        if recorder_engine is not None:
            # Recorder-side scopes stamp (and recorder-side
            # time-weighted instruments integrate over) the recorder
            # LP's clock, exactly as the shared-engine layout does.
            from repro.publishing.recorder_lp import recorder_side_prefixes
            rec_clock = lambda: recorder_engine.now  # noqa: E731
            for prefix in recorder_side_prefixes(
                    self.config.recorder_node_id):
                self.obs.bus.set_scope_clock(prefix, rec_clock)
                self.obs.registry.set_prefix_clock(prefix, rec_clock)
        self.registry = registry or ProgramRegistry()
        self._register_builtin_images()
        self.faults = FaultPlan(rng=self.rng,
                                loss_rate=self.config.loss_rate,
                                corruption_rate=self.config.corruption_rate,
                                registry=self.obs.registry)
        self.medium = self._build_medium()
        #: dead letters: one :class:`DeadLetter` (origin node, segment,
        #: attempts) for every guaranteed message some transport
        #: finally gave up on — same shape as the federation-level
        #: gateway ledger, so losslessness checks can sum both
        self.dead_letters: List[DeadLetter] = []
        #: active partition rules, in installation order
        self._partitions: List[object] = []
        self.recorder: Optional[Recorder] = None
        self.recovery: Optional[RecoveryManager] = None
        #: sharded placement (cluster.placement): the shard map plus
        #: one recorder / recovery manager per shard. With one shard,
        #: the lists alias [self.recorder] / [self.recovery] and
        #: ``placement`` stays None — no new metrics, no new ids.
        self.placement = None
        self.recorders: List[Recorder] = []
        self.recoveries: List[RecoveryManager] = []
        #: medium<->recorder bridge channels when the recorder has its
        #: own LP (a federation renumbers their src/dst into its LP
        #: space); empty otherwise
        self.bridge = None
        self.bridge_channels: List = []
        self._split_scheduler = None
        if self.config.publishing:
            self._build_recorder()
        self.nodes: Dict[int, Node] = {}
        first = self.config.first_node_id
        for node_id in range(first, first + self.config.nodes):
            self.nodes[node_id] = self._build_node(node_id)
        if self.config.services_node not in self.nodes:
            self.config.services_node = first
        for recovery in self.recoveries:
            if self.bridge is not None:
                # The restarter schedules medium-side work; when the
                # recovery manager runs on the recorder LP the call
                # crosses the cut at its exact claim time.
                recovery.node_restarter = (
                    lambda node_id: self.bridge.defer_to_medium(
                        self._restart_node_later, node_id))
            else:
                recovery.node_restarter = self._restart_node_later
        #: epidemic repair layer (publishing.gossip) — built only when
        #: enabled, so legacy configurations register no gossip metrics
        #: and draw from no gossip RNG streams
        self.gossip: Optional[GossipCoordinator] = None
        self.reception_loss: Optional[ReceptionLoss] = None
        if self.config.publishing and self.config.gossip_loss_rate > 0.0:
            self.install_reception_loss(self.config.gossip_loss_rate)
        if self.config.publishing and self.config.gossip:
            self.gossip = GossipCoordinator(self, GossipConfig(
                buffer_depth=self.config.gossip_buffer_depth,
                round_ms=self.config.gossip_round_ms,
                fanout=self.config.gossip_fanout,
                max_retries=self.config.gossip_max_retries))
            self.gossip.loss = self.reception_loss
            self.recovery.gossip = self.gossip

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _register_builtin_images(self) -> None:
        reg = self.registry
        if not reg.known(KERNEL_PROCESS_IMAGE):
            reg.register(KERNEL_PROCESS_IMAGE, KernelProcessProgram)
        if not reg.known(NLS_IMAGE):
            reg.register(NLS_IMAGE, NamedLinkServer)
        if not reg.known(PM_IMAGE):
            reg.register(PM_IMAGE, ProcessManager)
        if not reg.known(MS_IMAGE):
            reg.register(MS_IMAGE, MemoryScheduler)

    def _build_medium(self) -> Medium:
        cfg = self.config
        kwargs = dict(faults=self.faults,
                      enforce_recorder_ack=cfg.publishing,
                      obs=self.obs)
        if cfg.medium == "broadcast":
            return PerfectBroadcast(self.engine, **kwargs)
        if cfg.medium == "acking_ethernet":
            return AckingEthernet(self.engine, self.rng, **kwargs)
        if cfg.medium == "csma_ethernet":
            return CsmaEthernet(self.engine, self.rng, **kwargs)
        if cfg.medium == "star":
            return StarHub(self.engine, **kwargs)
        if cfg.medium == "token_ring":
            return TokenRing(self.engine, **kwargs)
        raise ReproError(f"unknown medium {cfg.medium!r}; choose from {MEDIA}")

    def _recorder_config(self, node_id: int) -> RecorderConfig:
        cfg = self.config
        return RecorderConfig(
            node_id=node_id,
            publish_path=cfg.publish_path,
            disks=cfg.disks,
            buffered_writes=cfg.buffered_writes,
            costs=cfg.costs,
            transport=TransportConfig(
                retransmit_timeout_ms=cfg.retransmit_timeout_ms,
                backoff_factor=cfg.backoff_factor,
                backoff_max_ms=cfg.backoff_max_ms,
                backoff_jitter=cfg.backoff_jitter,
                max_retries=cfg.transport_max_retries,
                per_destination=True, window=1),
        )

    def _build_recorder(self) -> None:
        cfg = self.config
        if cfg.recorder_shards > 1:
            self._build_recorder_shards()
            return
        recorder_config = self._recorder_config(cfg.recorder_node_id)
        recorder_engine = self.recorder_engine
        if recorder_engine is not None:
            from repro.publishing.recorder_lp import RecorderMediumBridge
            self.bridge = RecorderMediumBridge(
                self.medium, recorder_engine, cfg.recorder_node_id)
            self.bridge_channels = list(self.bridge.channels)
            rec_engine, rec_medium = recorder_engine, self.bridge
        else:
            rec_engine, rec_medium = self.engine, self.medium
        self.recorder = Recorder(rec_engine, rec_medium, recorder_config,
                                 obs=self.obs, rng=self.rng)
        self.recovery = RecoveryManager(
            rec_engine, self.recorder,
            node_ids=list(range(cfg.first_node_id,
                                cfg.first_node_id + cfg.nodes)),
            ping_interval_ms=cfg.watchdog_ping_ms,
            watchdog_timeout_ms=cfg.watchdog_timeout_ms,
        )
        self.recorders = [self.recorder]
        self.recoveries = [self.recovery]

    def _build_recorder_shards(self) -> None:
        """Sharded placement: several claim-filtered recorders split the
        node range (cluster.placement), each with its own recovery
        manager watching only its slice. Shard 0 is the primary — it
        additionally claims cross-cluster traffic and receives the
        kernels' crash reports, which it dispatches to the owning
        shard's manager."""
        cfg = self.config
        if self.recorder_engine is not None:
            raise ReproError(
                "recorder shards and a recorder LP are mutually "
                "exclusive (shards attach to the cluster medium)")
        if cfg.gossip:
            raise ReproError(
                "recorder shards and gossip repair are mutually "
                "exclusive (the gossip coordinator assumes one recorder)")
        from repro.cluster.placement import policy_from_name
        policy = policy_from_name(cfg.placement_policy,
                                  shards=cfg.recorder_shards)
        self.placement = policy.place(
            cluster_index=self.cluster_index or 0,
            first_node_id=cfg.first_node_id, nodes=cfg.nodes,
            recorder_base=cfg.recorder_node_id)
        for shard in self.placement.shards:
            recorder = Recorder(self.engine, self.medium,
                                self._recorder_config(shard.node_id),
                                obs=self.obs, rng=self.rng)
            recorder.claim = self.placement.claim_of(shard.index)
            manager = RecoveryManager(
                self.engine, recorder,
                node_ids=list(range(shard.lo, shard.hi)),
                ping_interval_ms=cfg.watchdog_ping_ms,
                watchdog_timeout_ms=cfg.watchdog_timeout_ms,
            )
            self.recorders.append(recorder)
            self.recoveries.append(manager)
        self.recorder = self.recorders[0]
        self.recovery = self.recoveries[0]
        # Kernels address crash reports to the primary shard's node id;
        # route each to the manager owning the crashed pid's range.
        placement = self.placement

        def _route_process_crashed(control, src_node: int) -> None:
            pid = ProcessId(*control["pid"])
            shard = placement.shard_for(pid.node)
            self.recoveries[shard.index]._on_process_crashed(
                control, src_node)
        self.recorder.on_control("process_crashed", _route_process_crashed)
        registry = self.obs.registry
        registry.gauge_fn("recorder.placement.shards",
                          lambda: len(self.recorders))
        for shard in self.placement.shards:
            registry.gauge_fn(
                f"recorder.placement.shard.{shard.node_id}.nodes",
                lambda _s=shard: _s.width)

    def _build_node(self, node_id: int) -> Node:
        cfg = self.config
        kernel_config = KernelConfig(
            publishing=cfg.publishing,
            recorder_node=cfg.recorder_node_id if cfg.publishing else None,
            costs=cfg.costs,
            transport=TransportConfig(
                retransmit_timeout_ms=cfg.retransmit_timeout_ms,
                backoff_factor=cfg.backoff_factor,
                backoff_max_ms=cfg.backoff_max_ms,
                backoff_jitter=cfg.backoff_jitter,
                max_retries=cfg.transport_max_retries,
                # With the epidemic repair layer on, receivers keep
                # frames the recorder missed: the gossip pull closes
                # the log hole instead of a sender retransmission.
                require_recorder_ack=cfg.publishing and not cfg.gossip,
                window=cfg.transport_window,
                ordered_window=cfg.transport_window > 1),
        )
        node = Node(self.engine, node_id, self.medium, kernel_config,
                    self.registry, obs=self.obs, rng=self.rng)
        node.kernel.transport.on_gave_up = (
            lambda segment, attempts, _n=node_id:
            self._note_dead_letter(_n, segment, attempts))
        return node

    def _note_dead_letter(self, node_id: int, segment, attempts: int) -> None:
        self.dead_letters.append(DeadLetter(node_id, segment, attempts))
        self.trace.emit("dead_letter", f"node{node_id}",
                        dst=getattr(segment, "dst_node", None),
                        attempts=attempts)

    def install_reception_loss(self, rate: Optional[float] = None) -> ReceptionLoss:
        """Install (or re-rate) seed-pure loss on the recording path.

        Built lazily so loss-free systems make no ``gossip/loss`` RNG
        draws and register no gossip counters; the chaos ``gossip_loss``
        action lands here mid-run.
        """
        if self.reception_loss is None:
            self.reception_loss = ReceptionLoss(
                self.rng.stream("gossip/loss"),
                self.config.gossip_loss_rate if rate is None else rate,
                self.obs.registry)
            self.medium.recorder_loss = self.reception_loss.lose_reception
            if self.gossip is not None:
                self.gossip.loss = self.reception_loss
        elif rate is not None:
            self.reception_loss.set_rate(rate)
        return self.reception_loss

    def _restart_node_later(self, node_id: int) -> None:
        policy = self.config.reboot_policy
        if policy == "none":
            return
        node = self.nodes.get(node_id)
        if node is None or node.up:
            return
        if policy == "spare":
            self.engine.schedule(self.config.reboot_delay_ms,
                                 self.spare_takeover, node_id)
        else:
            self.engine.schedule(self.config.reboot_delay_ms, node.restart)

    def spare_takeover(self, node_id: int) -> "Node":
        """Replace a failed processor with a spare that assumes its
        identity (§3.3.3: "it would be best to have one or more spare
        processors on the network that could assume the identities of
        failed processors").

        The dead node's interface is detached; a brand-new node —
        different hardware, same node id — attaches in its place with an
        empty kernel, and the recovery manager repopulates it exactly as
        it would a rebooted processor.
        """
        old = self.nodes.get(node_id)
        if old is None:
            raise ReproError(f"no node {node_id} to replace")
        if old.up:
            return old
        self.medium.detach(old.kernel.transport.iface)
        spare = self._build_node(node_id)
        self.nodes[node_id] = spare
        spare.booted = True
        if self.gossip is not None:
            # The spare starts with an empty (not absent) gossip buffer.
            self.gossip.attach_node(spare)
        self.trace.emit("spare", f"node{node_id}", event="takeover")
        return spare

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def boot(self, settle_ms: float = 500.0) -> None:
        """Boot every node's kernel process and the system processes,
        start the watchdogs, then let the engine settle."""
        cfg = self.config
        nls_pid: Optional[Tuple[int, int]] = None
        services_specs: Tuple = ()
        if cfg.boot_system_processes and cfg.services_node in self.nodes:
            node_order = tuple(sorted(self.nodes))
            # Boot order fixes the local ids: NLS=(n,1), PM=(n,2), MS=(n,3).
            services_specs = (
                (NLS_IMAGE, (), (), True, 2),
                (PM_IMAGE, (), (("proc", 2),), True, 2),
                (MS_IMAGE, (node_order,),
                 tuple(("kp", n) for n in node_order), True, 2),
            )
            nls_pid = (cfg.services_node, 1)
        for node_id, node in self.nodes.items():
            specs = services_specs if node_id == cfg.services_node else ()
            node.boot(boot_specs=specs, nls_pid=nls_pid)
        for recovery in self.recoveries:
            recovery.start()
        if cfg.checkpoint_policy is not None:
            self.install_checkpoint_policy(cfg.checkpoint_policy)
        if settle_ms > 0:
            self.run(settle_ms)
        if self.config.publishing:
            # Give every system process a first checkpoint so recovery
            # never needs to replay the boot sequence itself.
            self.checkpoint_all()

    def install_checkpoint_policy(self, name: str) -> CheckpointPolicy:
        """Install one of the thesis's checkpoint policies on every
        node: "young" (§3.2.4), "bound" (§3.2.3's recovery-time limit),
        or "storage" (§5.1's storage balance)."""
        from repro.publishing.checkpoints import (
            RecoveryTimeBoundPolicy,
            StorageBalancePolicy,
            YoungIntervalPolicy,
        )
        if name == "young":
            policy: CheckpointPolicy = YoungIntervalPolicy(
                mtbf_ms=self.config.checkpoint_mtbf_ms)
        elif name == "bound":
            policy = RecoveryTimeBoundPolicy(
                default_bound_ms=self.config.recovery_bound_ms)
        elif name == "storage":
            policy = StorageBalancePolicy()
        else:
            raise ReproError(
                f"unknown checkpoint policy {name!r}; "
                f"choose young, bound, or storage")
        for node in self.nodes.values():
            install_policy(node.kernel, policy)
        self.checkpoint_policy = policy
        return policy

    def run(self, duration_ms: float) -> float:
        """Advance the simulation ``duration_ms`` milliseconds.

        With a recorder LP, both engines advance behind a local
        partitioned scheduler (standalone use; a federation drives its
        own scheduler over every LP instead and never calls this).
        """
        if self.recorder_engine is not None:
            scheduler = self._ensure_split_scheduler()
            return scheduler.run(until=scheduler.now + duration_ms)
        return self.engine.run(until=self.engine.now + duration_ms)

    def run_until_idle(self, max_ms: float = 60_000.0) -> float:
        """Run until no events remain or the guard expires."""
        return self.run(max_ms)

    def _ensure_split_scheduler(self):
        if self._split_scheduler is None:
            from repro.sim.engine import PartitionedEngine
            m2r, r2m = self.bridge_channels
            self._split_scheduler = PartitionedEngine(
                {m2r.src: self.engine, m2r.dst: self.recorder_engine},
                list(self.bridge_channels))
        return self._split_scheduler

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """A name-sorted snapshot of every registered metric."""
        return self.obs.registry.snapshot()

    def export_metrics(self, path: str) -> None:
        """Write :meth:`metrics_snapshot` to ``path`` as JSON."""
        self.obs.registry.export_json(path)

    def export_trace(self, path: str) -> None:
        """Write every recorded event to ``path`` as JSON lines."""
        self.obs.bus.export_json(path)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn_program(self, image: str, args: Tuple = (), node: int = 1,
                      recoverable: bool = True, state_pages: int = 4) -> ProcessId:
        """Create a process directly through the node's kernel process.

        This bypasses the PM→MS message chain (use a client program and
        the process manager for the fully message-based path). The
        kernel process's allocator state changes outside a message, so
        it is immediately re-checkpointed to keep its recovery sound.
        """
        kernel = self.nodes[node].kernel
        kp_pcb = kernel.processes.get(kernel_pid(node))
        if kp_pcb is None:
            raise ReproError(f"node {node} is not booted")
        kp_program: KernelProcessProgram = kp_pcb.program  # type: ignore[assignment]
        pid = kp_program._allocate(node)
        kernel.create_process(image=image, args=args, pid=pid,
                              initial_links=kp_program._with_nls(()),
                              recoverable=recoverable, state_pages=state_pages)
        if self.config.publishing:
            kernel.checkpoint_process(kernel_pid(node))
        return pid

    def checkpoint_all(self) -> int:
        """Checkpoint every checkpointable process; returns the count."""
        count = 0
        for node in self.nodes.values():
            if not node.up:
                continue
            for pid in list(node.kernel.processes):
                if node.kernel.checkpoint_process(pid):
                    count += 1
        return count

    def checkpoint(self, pid: ProcessId) -> bool:
        """Checkpoint one process."""
        return self.nodes[pid_node(pid, self)].kernel.checkpoint_process(pid)

    def process_state(self, pid: ProcessId) -> Optional[str]:
        """The state name of a process, wherever it lives, or None."""
        for node in self.nodes.values():
            pcb = node.kernel.processes.get(pid)
            if pcb is not None:
                return pcb.state.value
        return None

    def program_of(self, pid: ProcessId):
        """The live program instance behind a pid (tests peek at state)."""
        for node in self.nodes.values():
            pcb = node.kernel.processes.get(pid)
            if pcb is not None:
                return pcb.program
        return None

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash_process(self, pid: ProcessId) -> None:
        """Halt one process; the crash is reported and recovery begins."""
        for node in self.nodes.values():
            if pid in node.kernel.processes:
                node.kernel.crash_process(pid)
                return
        raise ReproError(f"no such process {pid}")

    def crash_node(self, node_id: int) -> None:
        """Fail a whole processor; the watchdog will notice."""
        self.nodes[node_id].crash()

    def restart_node(self, node_id: int) -> None:
        """Reboot a down processor immediately (operator action); the
        recovery manager repopulates it as usual."""
        node = self.nodes[node_id]
        if not node.up:
            node.restart()

    def partition(self, *groups) -> object:
        """Cut the network into node groups: frames crossing the cut are
        dropped until :meth:`heal_partitions` (or ``heal(rule)``). Nodes
        named in no group — the recorder, typically — remain reachable,
        so the §4.3.3 "temporary network failure" hits node↔node traffic
        while publishing continues to observe whatever still flows."""
        rule = self.faults.partition(*groups)
        self._partitions.append(rule)
        self.trace.emit("partition", "net",
                        groups=[sorted(g) for g in groups])
        return rule

    def heal(self, rule) -> None:
        """Lift one partition rule."""
        self.faults.remove_rule(rule)
        if rule in self._partitions:
            self._partitions.remove(rule)
        self.trace.emit("partition_healed", "net")

    def heal_partitions(self) -> int:
        """Lift every active partition; returns how many were healed."""
        healed = 0
        for rule in list(self._partitions):
            self.heal(rule)
            healed += 1
        return healed

    def stall_disks(self, duration_ms: float) -> float:
        """Freeze the recorder's disk array (controller stall); returns
        the time the stall lifts."""
        if self.recorder is None:
            raise ReproError("this system has no recorder")
        ends = self.recorder.disks.stall(duration_ms)
        self.trace.emit("disk_stall", "recorder", until=ends)
        return ends

    def slow_disks(self, factor: float) -> None:
        """Degrade (or with 1.0 restore) the recorder's disk speed."""
        if self.recorder is None:
            raise ReproError("this system has no recorder")
        self.recorder.disks.set_slowdown(factor)
        self.trace.emit("disk_slowdown", "recorder", factor=factor)

    def crash_recorder(self, shard: int = 0) -> None:
        """Fail the recorder (or one shard of it); published traffic to
        its claimed range suspends while sibling shards keep acking."""
        if not self.recorders:
            raise ReproError("this system has no recorder")
        if self.recorder_engine is not None:
            raise ReproError(
                "recorder crash/restart is not supported with a "
                "recorder LP; use the serial engine for recorder-fault "
                "scenarios")
        self.recorders[shard].crash()
        self.recoveries[shard].stop()

    def restart_recorder(self, shard: int = 0) -> int:
        """Restart the recorder (or one shard of it) and run the §3.3.4
        reconciliation."""
        if not self.recoveries:
            raise ReproError("this system has no recorder")
        if self.recorder_engine is not None:
            raise ReproError(
                "recorder crash/restart is not supported with a "
                "recorder LP; use the serial engine for recorder-fault "
                "scenarios")
        return self.recoveries[shard].restart_recorder()


def pid_node(pid: ProcessId, system: System) -> int:
    """The node a pid currently lives on (falls back to its birth node)."""
    for node_id, node in system.nodes.items():
        if pid in node.kernel.processes:
            return node_id
    return pid.node
