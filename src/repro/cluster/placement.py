"""Deterministic recorder placement for clusters and federations.

PR 10 tentpole #2: a cluster may host *several* recorders, each
claiming a contiguous range of processing-node ids — the sharded
analogue of the single §3.3 recorder. Placement is a pure function of
the cluster layout (first node id, node count, shard count), so every
worker process of the parallel DES, the serial reference engine and
the capacity model all derive byte-identical shard maps without
coordination.

A placement answers three questions:

* **Which recorder owns node N?** — :meth:`ClusterPlacement.shard_for`.
* **Which recorder records cross-cluster traffic?** — the *primary*
  shard (index 0). Frames whose destination lies outside the local
  node range are claimed by the primary, which therefore accumulates a
  passive replay log for remote destinations; that log is what
  :meth:`~repro.cluster.gateways.ClusterFederation.remote_recover`
  replays when a remote cluster's own recorder is down.
* **In what order should a recovering node query recorders?** —
  :func:`placement_priority_vectors` bridges a placement into the
  §multi-recorder :class:`~repro.publishing.multi_recorder.PriorityVectors`
  (owning shard first, then the remaining shards by index).

Determinism contract: :meth:`ClusterPlacement.serialize` is canonical
(sorted keys, no floats, no timestamps); equal layouts produce
byte-identical serializations and therefore equal
:meth:`ClusterPlacement.digest` values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import PlacementError

#: shard 0 of a cluster sits at ``first_node_id + RECORDER_ID_OFFSET``;
#: shard j at the next id up. With the federation node stride of 100
#: this reproduces the historic single-recorder id 90 for cluster 0.
RECORDER_ID_OFFSET = 89


@dataclass(frozen=True)
class RecorderShard:
    """One recorder's slice of a cluster: node id + claimed id range."""

    index: int      # shard ordinal within the cluster (0 = primary)
    node_id: int    # the recorder's own network id
    lo: int         # first claimed processing-node id (inclusive)
    hi: int         # one past the last claimed processing-node id

    def claims_node(self, node_id: int) -> bool:
        return self.lo <= node_id < self.hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def to_dict(self) -> Dict[str, int]:
        return {"index": self.index, "node_id": self.node_id,
                "lo": self.lo, "hi": self.hi}


@dataclass(frozen=True)
class ClusterPlacement:
    """The full shard map of one cluster (pure data, hashable)."""

    cluster_index: int
    first_node_id: int
    nodes: int
    policy: str
    shards: Tuple[RecorderShard, ...]

    # ------------------------------------------------------------------
    def shard_for(self, node_id: int) -> RecorderShard:
        """The shard owning ``node_id``'s range."""
        for shard in self.shards:
            if shard.claims_node(node_id):
                return shard
        raise PlacementError(
            f"node {node_id} is outside cluster {self.cluster_index}'s "
            f"placement [{self.first_node_id}, "
            f"{self.first_node_id + self.nodes})")

    def recorder_ids(self) -> Tuple[int, ...]:
        return tuple(shard.node_id for shard in self.shards)

    @property
    def primary(self) -> RecorderShard:
        return self.shards[0]

    def is_local_node(self, node_id: int) -> bool:
        return self.first_node_id <= node_id < self.first_node_id + self.nodes

    def claim_of(self, shard_index: int) -> Callable[[int], bool]:
        """The claim predicate installed on shard ``shard_index``'s
        recorder (:attr:`repro.publishing.recorder.Recorder.claim`).

        A shard claims destinations inside its own range; the primary
        shard additionally claims every destination *outside* the local
        node range — gateway-bound cross-cluster traffic — so one
        recorder per cluster holds the passive remote replay log.
        """
        shard = self.shards[shard_index]
        if shard_index == 0:
            lo, hi = shard.lo, shard.hi
            first, limit = self.first_node_id, self.first_node_id + self.nodes

            def claim(node_id: int, _lo=lo, _hi=hi,
                      _first=first, _limit=limit) -> bool:
                if _lo <= node_id < _hi:
                    return True
                return not (_first <= node_id < _limit)
            return claim
        return shard.claims_node

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "cluster_index": self.cluster_index,
            "first_node_id": self.first_node_id,
            "nodes": self.nodes,
            "policy": self.policy,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def serialize(self) -> bytes:
        """Canonical byte-stable encoding (determinism test surface)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def digest(self) -> str:
        return hashlib.sha256(self.serialize()).hexdigest()


def placement_digest(placements: Sequence[ClusterPlacement]) -> str:
    """One digest over a whole federation's shard maps."""
    h = hashlib.sha256()
    for placement in placements:
        h.update(placement.serialize())
        h.update(b"\n")
    return h.hexdigest()


# ----------------------------------------------------------------------
class RangeShardPolicy:
    """Split a cluster's node range into ``shards`` contiguous slices.

    Shard j claims ``[first + j*n//k, first + (j+1)*n//k)`` — the same
    integer arithmetic as the partitioned engine's
    :func:`~repro.cluster.gateways.ClusterFederation.lp_of`, so slice
    widths differ by at most one node and the map depends only on
    ``(first_node_id, nodes, shards)``.
    """

    name = "range"

    def __init__(self, shards: int = 1):
        if shards < 1:
            raise PlacementError(
                f"a cluster needs at least one recorder shard, got {shards}")
        self.shards = shards

    def shard_count(self, nodes: int) -> int:
        """Never place more shards than nodes (empty ranges record
        nothing and would waste a network id)."""
        return max(1, min(self.shards, nodes))

    def place(self, cluster_index: int, first_node_id: int, nodes: int,
              recorder_base: int) -> ClusterPlacement:
        if nodes < 1:
            raise PlacementError(
                f"cluster {cluster_index} has no nodes to place over")
        count = self.shard_count(nodes)
        if first_node_id <= recorder_base < first_node_id + nodes or \
                first_node_id < recorder_base + count <= first_node_id + nodes:
            raise PlacementError(
                f"recorder ids [{recorder_base}, {recorder_base + count}) "
                f"collide with cluster {cluster_index}'s node range "
                f"[{first_node_id}, {first_node_id + nodes})")
        shards = []
        for j in range(count):
            lo = first_node_id + j * nodes // count
            hi = first_node_id + (j + 1) * nodes // count
            shards.append(RecorderShard(index=j, node_id=recorder_base + j,
                                        lo=lo, hi=hi))
        return ClusterPlacement(cluster_index=cluster_index,
                                first_node_id=first_node_id, nodes=nodes,
                                policy=self.name, shards=tuple(shards))


class LoadBalancedShardPolicy(RangeShardPolicy):
    """Size the shard count to the cluster's load instead of fixing it:
    one shard per ``nodes_per_shard`` processing nodes (rounded up),
    capped at ``max_shards``. Bigger clusters automatically grow more
    recorder shards — the "load balanced" placement of ISSUE 10."""

    name = "balanced"

    def __init__(self, nodes_per_shard: int = 16, max_shards: int = 8):
        if nodes_per_shard < 1:
            raise PlacementError(
                f"nodes_per_shard must be positive, got {nodes_per_shard}")
        super().__init__(shards=max(1, max_shards))
        self.nodes_per_shard = nodes_per_shard

    def shard_count(self, nodes: int) -> int:
        wanted = (nodes + self.nodes_per_shard - 1) // self.nodes_per_shard
        return max(1, min(self.shards, wanted, nodes))


def policy_from_name(name: str, shards: int = 1,
                     nodes_per_shard: int = 16) -> RangeShardPolicy:
    """CLI/workload bridge: build a placement policy from its name."""
    if name == "range":
        return RangeShardPolicy(shards=shards)
    if name == "balanced":
        return LoadBalancedShardPolicy(nodes_per_shard=nodes_per_shard,
                                       max_shards=max(shards, 1))
    raise PlacementError(f"unknown placement policy {name!r} "
                             "(expected 'range' or 'balanced')")


# ----------------------------------------------------------------------
def placement_priority_vectors(placement: ClusterPlacement):
    """Bridge a placement into the multi-recorder §3.3.4 machinery.

    Every node's priority vector ranks its *owning* shard first, then
    the remaining shards by index — so the multi-recorder claim
    protocol elects the shard that actually holds the node's records,
    and falls back deterministically when it is down.
    """
    from repro.publishing.multi_recorder import PriorityVectors
    vectors: Dict[int, List[int]] = {}
    for node in range(placement.first_node_id,
                      placement.first_node_id + placement.nodes):
        owner = placement.shard_for(node)
        rest = [shard.node_id for shard in placement.shards
                if shard.index != owner.index]
        vectors[node] = [owner.node_id] + rest
    return PriorityVectors(vectors)
