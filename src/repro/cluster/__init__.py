"""Cluster configurations (§6.2)."""

from repro.cluster.gateways import (
    GATEWAY_ID_BASE,
    ClusterFederation,
    Gateway,
    GatewayForwarder,
    GatewayTap,
    bridge,
    directed_gateways,
    federation_edges,
    gateway_id_base,
)
from repro.cluster.placement import (
    RECORDER_ID_OFFSET,
    ClusterPlacement,
    LoadBalancedShardPolicy,
    RangeShardPolicy,
    RecorderShard,
    placement_digest,
    placement_priority_vectors,
    policy_from_name,
)

__all__ = [
    "GATEWAY_ID_BASE",
    "RECORDER_ID_OFFSET",
    "ClusterFederation",
    "ClusterPlacement",
    "Gateway",
    "GatewayForwarder",
    "GatewayTap",
    "LoadBalancedShardPolicy",
    "RangeShardPolicy",
    "RecorderShard",
    "bridge",
    "directed_gateways",
    "federation_edges",
    "gateway_id_base",
    "placement_digest",
    "placement_priority_vectors",
    "policy_from_name",
]
