"""Cluster configurations (§6.2)."""

from repro.cluster.gateways import (
    GATEWAY_ID_BASE,
    ClusterFederation,
    Gateway,
    GatewayForwarder,
    GatewayTap,
    bridge,
    directed_gateways,
    federation_edges,
)

__all__ = [
    "GATEWAY_ID_BASE",
    "ClusterFederation",
    "Gateway",
    "GatewayForwarder",
    "GatewayTap",
    "bridge",
    "directed_gateways",
    "federation_edges",
]
