"""Cluster configurations (§6.2)."""

from repro.cluster.gateways import Gateway, ClusterFederation

__all__ = ["Gateway", "ClusterFederation"]
