"""LAN clusters joined by store-and-forward gateways (§6.2).

"More likely are cluster configurations made up of a number of
broadcast media networks connected via a store and forward network. ...
In these networks, a recorder can be attached to each cluster to
perform recovery for that cluster alone. The great advantage to this
scheme is autonomous control."

A gateway is split into its two halves, because they are the only
cross-cluster edges and therefore the natural cut line for partitioned
(parallel) execution:

* :class:`GatewayTap` sits on the **near** medium and claims frames
  whose destination lives on the far side (the near medium's hardware
  ack completes the original sender's transmission — the gateway takes
  custody). It stamps each claimed frame with its absolute forwarding
  time (``now + forward_delay_ms``) and hands it to a channel.
* :class:`GatewayForwarder` sits on the **far** medium: it re-offers
  custody frames with itself as the frame-level source, retrying until
  the far side — including its recorder — accepts, and surfaces retry
  exhaustion (or a crash of the gateway itself) as dead letters:
  ``gateway.<id>.frames_dropped`` on the far cluster's metrics spine
  plus a ``gateway.drop`` trace event, mirroring
  ``Transport.on_gave_up``.

:class:`Gateway` is the composite handle — both halves on one engine,
joined by a same-engine channel — and keeps the original one-object
API. In a partitioned federation the halves live on *different*
engines, joined by a :class:`~repro.sim.engine.PartitionChannel` whose
lookahead is exactly ``forward_delay_ms`` (see ``docs/PARALLEL_DES.md``).

:class:`ClusterFederation` builds N :class:`repro.system.System`
clusters with disjoint node-id ranges and gateway routing over a
``mesh`` (default) or ``ring`` topology — on one engine
(``partitions=None``), or on one engine per logical process
(``partitions=P``) driven by a
:class:`~repro.sim.engine.PartitionedEngine`.

Gateway/interface ids are deterministic: federation gateways derive
them from the topology (edge rank and direction, starting at
:data:`GATEWAY_ID_BASE`), and standalone gateways allocate from a
per-engine counter — never from process-global construction history,
so two federations built in one process get identical ids.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from repro.errors import NetworkError
from repro.net.frames import DeadLetter, Frame, FrameKind
from repro.net.media import Medium, NetworkInterface
from repro.obs import Observability, merge_event_streams, merge_snapshots
from repro.sim.engine import Engine, EngineCore, PartitionChannel, PartitionedEngine
from repro.system import System, SystemConfig

#: First gateway/interface id; each gateway consumes two ids (near and
#: far side). Cluster node ranges stay far below this.
GATEWAY_ID_BASE = 9000

#: Federation gateway topologies.
TOPOLOGIES = ("mesh", "ring")

#: engine -> next standalone gateway id (ids are per-engine, not
#: process-global, so construction history elsewhere cannot skew them)
_engine_gateway_ids: "WeakKeyDictionary[EngineCore, int]" = WeakKeyDictionary()


def _allocate_gateway_id(engine: EngineCore) -> int:
    next_id = _engine_gateway_ids.get(engine, GATEWAY_ID_BASE)
    _engine_gateway_ids[engine] = next_id + 2
    return next_id


def federation_edges(clusters: int, topology: str = "mesh") -> List[Tuple[int, int]]:
    """The undirected cluster pairs a federation bridges, in id order.

    ``mesh`` bridges every pair; ``ring`` bridges neighbours only (so
    gateways scale O(N), but only neighbour-to-neighbour traffic is
    routable).
    """
    if topology == "mesh":
        return [(i, j) for i in range(clusters) for j in range(i + 1, clusters)]
    if topology == "ring":
        if clusters <= 1:
            return []
        if clusters == 2:
            return [(0, 1)]
        return [(i, i + 1) for i in range(clusters - 1)] + [(0, clusters - 1)]
    raise NetworkError(
        f"unknown federation topology {topology!r}; choose from {TOPOLOGIES}")


def gateway_id_base(clusters: int, nodes_stride: int = 100) -> int:
    """The first gateway id for a federation of this size.

    Small federations keep the historic :data:`GATEWAY_ID_BASE`;
    planet-scale ones (whose node ranges would run past 9000 — e.g.
    100 clusters at the default stride) bump the base to the next
    multiple of it above the node-id ceiling, so gateway ids never
    collide with node or recorder ids at any scale.
    """
    top = 1 + clusters * nodes_stride
    if top < GATEWAY_ID_BASE:
        return GATEWAY_ID_BASE
    return ((top // GATEWAY_ID_BASE) + 1) * GATEWAY_ID_BASE


def directed_gateways(clusters: int, topology: str = "mesh",
                      nodes_stride: int = 100) -> List[Tuple[int, int, int]]:
    """Every directed gateway as ``(gateway_id, src_cluster, dst_cluster)``.

    Ids are a pure function of the topology and the id layout — every
    process (and every pool worker rebuilding only its shard) computes
    the same ids.
    """
    first = gateway_id_base(clusters, nodes_stride)
    out: List[Tuple[int, int, int]] = []
    for rank, (a, b) in enumerate(federation_edges(clusters, topology)):
        base = first + 4 * rank
        out.append((base, a, b))
        out.append((base + 2, b, a))
    return out


class GatewayForwarder:
    """The far half: holds custody, re-offers, retries, dead-letters.

    Frames enter through :meth:`accept` — directly scheduled by a
    same-engine channel, or injected at a window barrier by the
    partition scheduler.
    """

    def __init__(self, engine: EngineCore, far: Medium, gateway_id: int,
                 retry_ms: float = 50.0, max_retries: int = 100,
                 service_ms: float = 0.0,
                 obs: Optional[Observability] = None,
                 on_drop: Optional[Callable[[int, Frame, int], None]] = None):
        self.engine = engine
        self.far = far
        self.gateway_id = gateway_id
        self.retry_ms = retry_ms
        self.max_retries = max_retries
        #: uplink serialisation time per custody frame: 0 (default)
        #: keeps the legacy infinite-server forwarder — frames re-offer
        #: the instant they arrive, digest-identical to earlier code.
        #: >0 models the gateway as a single-server FIFO queue, the
        #: station the federation capacity model predicts the knee of
        #: (repro.queueing.federation).
        self.service_ms = service_ms
        self._busy_until = 0.0
        self.on_drop = on_drop
        self.up = True
        self._awaiting: Dict[int, int] = {}    # frame_id -> attempts
        self._originals: Dict[int, Frame] = {}  # frame_id -> original frame
        obs = obs or Observability(lambda: engine.now)
        prefix = f"gateway.{gateway_id}"
        self._forwarded = obs.registry.counter(f"{prefix}.frames_forwarded")
        self._retried = obs.registry.counter(f"{prefix}.retries")
        self._dropped = obs.registry.counter(f"{prefix}.frames_dropped")
        if service_ms > 0.0:
            self._serviced = obs.registry.counter(f"{prefix}.frames_serviced")
            self._service_wait = obs.registry.counter(
                f"{prefix}.service_wait_ms")
        self._scope = obs.scope("gateway")
        self.far_iface = NetworkInterface(
            gateway_id + 1, lambda frame: None,
            on_delivered=self._on_far_delivered)
        far.attach(self.far_iface)

    # -- the figures tests and benches read ----------------------------
    @property
    def frames_forwarded(self) -> int:
        return self._forwarded.value

    @property
    def retries(self) -> int:
        return self._retried.value

    @property
    def frames_dropped(self) -> int:
        return self._dropped.value

    # ------------------------------------------------------------------
    def accept(self, frame: Frame) -> None:
        """Take custody of a claimed frame and start forwarding it.

        With ``service_ms`` set, custody frames serialise through a
        single-server FIFO: each transmission starts when the previous
        one finishes, so offered load beyond ``1000/service_ms``
        frames/s builds an unbounded backlog — the capacity knee."""
        if self.service_ms <= 0.0:
            self._forward(frame, 0)
            return
        now = self.engine.now
        start = self._busy_until if self._busy_until > now else now
        done = start + self.service_ms
        self._busy_until = done
        self._serviced.inc()
        self._service_wait.inc(done - now - self.service_ms)
        self.engine.schedule(done - now, self._forward, frame, 0)

    def _forward(self, frame: Frame, attempt: int) -> None:
        if not self.up:
            self._drop(frame, attempt, "gateway_down")
            return
        if attempt >= self.max_retries:
            self._drop(frame, attempt, "retries_exhausted")
            return
        clone = frame.clone_for(frame.dst_node)
        # The gateway takes custody: it is the frame-level source on the
        # far medium, so the far medium's hardware ack comes back here.
        clone.src_node = self.far_iface.node_id
        clone.recorder_acked = False
        self._awaiting[clone.frame_id] = attempt
        self._originals[clone.frame_id] = frame
        self._forwarded.inc()
        self.far_iface.send(clone)

    def _on_far_delivered(self, frame: Frame, ok: bool) -> None:
        attempt = self._awaiting.pop(frame.frame_id, None)
        if attempt is None:
            return
        original = self._originals.pop(frame.frame_id, None)
        if ok or original is None:
            return
        self._retried.inc()
        self.engine.schedule(self.retry_ms, self._forward, original, attempt + 1)

    def _drop(self, frame: Frame, attempt: int, reason: str) -> None:
        """Dead-letter a custody frame, mirroring ``Transport.on_gave_up``."""
        self._dropped.inc()
        self._scope.emit("drop", f"gateway{self.gateway_id}",
                         dst=frame.dst_node, attempts=attempt,
                         reason=reason, bytes=frame.size_bytes)
        if self.on_drop is not None:
            self.on_drop(self.gateway_id, frame, attempt)

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail the far half: every frame in custody is lost and
        dead-lettered. Custody loss is *permanent* — the near-side
        sender's transport was satisfied when the near cluster's
        recorder stored the frame, so nothing upstream retransmits; the
        dead-letter ledger is how the loss surfaces. (Frames the tap
        had not yet claimed are safe: their senders keep retrying at
        the link level until the gateway is back.)"""
        if not self.up:
            return
        self.up = False
        self.far_iface.up = False
        for frame_id, attempt in list(self._awaiting.items()):
            original = self._originals.get(frame_id)
            if original is not None:
                self._drop(original, attempt, "gateway_crash")
        self._awaiting.clear()
        self._originals.clear()

    def restart(self) -> None:
        self.up = True
        self.far_iface.up = True


class GatewayTap:
    """The near half: claims far-bound frames and stamps their
    forwarding time into a channel."""

    def __init__(self, engine: EngineCore, near: Medium,
                 far_nodes: Callable[[int], bool], channel,
                 forward_delay_ms: float, gateway_id: int,
                 obs: Optional[Observability] = None):
        self.engine = engine
        self.near = near
        self.far_nodes = far_nodes
        self.channel = channel
        self.forward_delay_ms = forward_delay_ms
        self.gateway_id = gateway_id
        self.up = True
        obs = obs or Observability(lambda: engine.now)
        self._claimed = obs.registry.counter(
            f"gateway.{gateway_id}.frames_claimed")
        self.near_iface = NetworkInterface(
            gateway_id, self._on_near_frame, accept_extra=far_nodes)
        near.attach(self.near_iface)

    @property
    def frames_claimed(self) -> int:
        return self._claimed.value

    def _on_near_frame(self, frame: Frame) -> None:
        if not self.up:
            return
        if frame.kind is not FrameKind.DATA:
            return
        if not self.far_nodes(frame.dst_node):
            return
        if not frame.checksum_ok():
            return   # the near sender's transport will retry
        self._claimed.inc()
        self.channel.send(self.engine.now + self.forward_delay_ms, frame)

    def crash(self) -> None:
        self.up = False
        self.near_iface.up = False

    def restart(self) -> None:
        self.up = True
        self.near_iface.up = True


class _DirectChannel:
    """A same-engine gateway edge: schedule delivery at the exact
    stamped time (``schedule_abs`` — the same float ``schedule(delay)``
    would compute, so serial and partitioned fire times are identical)."""

    __slots__ = ("engine", "deliver")

    def __init__(self, engine: EngineCore, deliver: Callable[[Frame], None]):
        self.engine = engine
        self.deliver = deliver

    def send(self, fire_time: float, frame: Frame) -> None:
        self.engine.schedule_abs(fire_time, self.deliver, frame)


class Gateway:
    """A one-directional store-and-forward bridge between two media.

    The composite handle over a :class:`GatewayTap` and a
    :class:`GatewayForwarder`. Constructed directly, both halves share
    one engine (the classic serial gateway); a partitioned federation
    builds the halves on different engines and wraps them with
    :meth:`from_parts` (either half may be absent in a federation
    *slice* that only owns one side).
    """

    def __init__(self, engine: EngineCore, near: Medium, far: Medium,
                 far_nodes: Callable[[int], bool],
                 forward_delay_ms: float = 5.0,
                 retry_ms: float = 50.0, max_retries: int = 100,
                 service_ms: float = 0.0,
                 gateway_id: Optional[int] = None,
                 near_obs: Optional[Observability] = None,
                 far_obs: Optional[Observability] = None,
                 on_drop: Optional[Callable[[int, Frame, int], None]] = None):
        if gateway_id is None:
            gateway_id = _allocate_gateway_id(engine)
        shared: Optional[Observability] = None
        if near_obs is None or far_obs is None:
            shared = Observability(lambda: engine.now)
        self.engine = engine
        self.near = near
        self.far = far
        self.far_nodes = far_nodes
        self.forward_delay_ms = forward_delay_ms
        self.retry_ms = retry_ms
        self.max_retries = max_retries
        self.gateway_id = gateway_id
        self.forwarder: Optional[GatewayForwarder] = GatewayForwarder(
            engine, far, gateway_id, retry_ms=retry_ms,
            max_retries=max_retries, service_ms=service_ms,
            obs=far_obs or shared, on_drop=on_drop)
        self.tap: Optional[GatewayTap] = GatewayTap(
            engine, near, far_nodes,
            _DirectChannel(engine, self.forwarder.accept),
            forward_delay_ms, gateway_id, obs=near_obs or shared)

    @classmethod
    def from_parts(cls, gateway_id: int, tap: Optional[GatewayTap],
                   forwarder: Optional[GatewayForwarder]) -> "Gateway":
        """Wrap pre-built halves (partitioned federations)."""
        gateway = cls.__new__(cls)
        gateway.engine = (tap or forwarder).engine if (tap or forwarder) else None
        gateway.near = tap.near if tap is not None else None
        gateway.far = forwarder.far if forwarder is not None else None
        gateway.far_nodes = tap.far_nodes if tap is not None else None
        gateway.forward_delay_ms = (tap.forward_delay_ms
                                    if tap is not None else None)
        gateway.retry_ms = forwarder.retry_ms if forwarder is not None else None
        gateway.max_retries = (forwarder.max_retries
                               if forwarder is not None else None)
        gateway.gateway_id = gateway_id
        gateway.tap = tap
        gateway.forwarder = forwarder
        return gateway

    # -- compatibility attributes --------------------------------------
    @property
    def near_iface(self) -> Optional[NetworkInterface]:
        return self.tap.near_iface if self.tap is not None else None

    @property
    def far_iface(self) -> Optional[NetworkInterface]:
        return self.forwarder.far_iface if self.forwarder is not None else None

    @property
    def frames_claimed(self) -> int:
        return self.tap.frames_claimed if self.tap is not None else 0

    @property
    def frames_forwarded(self) -> int:
        return self.forwarder.frames_forwarded if self.forwarder else 0

    @property
    def retries(self) -> int:
        return self.forwarder.retries if self.forwarder is not None else 0

    @property
    def frames_dropped(self) -> int:
        return self.forwarder.frames_dropped if self.forwarder else 0

    @property
    def up(self) -> bool:
        return ((self.tap is None or self.tap.up)
                and (self.forwarder is None or self.forwarder.up))

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail both halves: claiming stops, custody frames are lost."""
        if self.tap is not None:
            self.tap.crash()
        if self.forwarder is not None:
            self.forwarder.crash()

    def restart(self) -> None:
        if self.tap is not None:
            self.tap.restart()
        if self.forwarder is not None:
            self.forwarder.restart()


def bridge(engine: Engine, medium_a: Medium, medium_b: Medium,
           a_nodes: Set[int], b_nodes: Set[int],
           forward_delay_ms: float = 5.0) -> Tuple[Gateway, Gateway]:
    """A bidirectional gateway pair between two cluster media."""
    a_to_b = Gateway(engine, medium_a, medium_b,
                     far_nodes=lambda n: n in b_nodes,
                     forward_delay_ms=forward_delay_ms)
    b_to_a = Gateway(engine, medium_b, medium_a,
                     far_nodes=lambda n: n in a_nodes,
                     forward_delay_ms=forward_delay_ms)
    return a_to_b, b_to_a


class ClusterFederation:
    """Several publishing clusters, fully bridged.

    Each cluster is an independent :class:`System` — own medium, own
    recorder, own recovery manager ("each cluster can decide for itself
    how and whether or not it will perform recovery") — with disjoint
    node-id ranges so pids are globally unambiguous.

    ``partitions=None`` (default) runs every cluster on one shared
    engine. ``partitions=P`` groups the clusters into P logical
    processes, one engine each, with every cross-LP gateway split into
    a tap + forwarder joined by a lookahead-stamped
    :class:`~repro.sim.engine.PartitionChannel`; a
    :class:`~repro.sim.engine.PartitionedEngine` advances the LPs in
    lookahead-bounded windows. Event order is byte-identical to the
    serial engine (see ``docs/PARALLEL_DES.md`` and
    ``tests/test_des_equivalence.py``).

    ``only_partition=k`` builds just LP *k*'s slice — its clusters,
    taps for outgoing edges and forwarders for incoming ones — for
    process-pool workers that rebuild their shard from config and
    exchange frames at barriers (:mod:`repro.parallel.des`). A slice
    cannot :meth:`run` itself; its pool master drives the windows.
    """

    def __init__(self, cluster_sizes: List[int], nodes_stride: int = 100,
                 forward_delay_ms: float = 5.0, publishing: bool = True,
                 configs: Optional[List[SystemConfig]] = None,
                 partitions: Optional[int] = None,
                 topology: str = "mesh",
                 only_partition: Optional[int] = None,
                 forward_delays: Optional[Dict[Tuple[int, int], float]] = None,
                 recorder_lps: bool = False,
                 lockstep: bool = False,
                 batch_ms: Optional[float] = None,
                 gateway_service_ms: float = 0.0):
        if not cluster_sizes:
            raise NetworkError("a federation needs at least one cluster")
        count = len(cluster_sizes)
        if configs is not None and len(configs) != count:
            raise NetworkError(
                f"{len(configs)} configs for {count} clusters — "
                f"configs must match cluster_sizes one-to-one")
        if topology not in TOPOLOGIES:
            raise NetworkError(
                f"unknown federation topology {topology!r}; "
                f"choose from {TOPOLOGIES}")
        if partitions is not None and partitions < 1:
            raise NetworkError(f"partitions must be >= 1, got {partitions}")
        self.topology = topology
        self.forward_delay_ms = forward_delay_ms
        #: directed (src_cluster, dst_cluster) -> forwarding delay;
        #: edges not listed fall back to ``forward_delay_ms``. The delay
        #: is both the gateway's store-and-forward latency and the
        #: matching channel's lookahead, so a slow edge buys its
        #: destination a *wider* safe window instead of throttling
        #: everyone to the global minimum.
        self.forward_delays: Dict[Tuple[int, int], float] = dict(
            forward_delays or {})
        for edge, delay in self.forward_delays.items():
            if delay <= 0:
                raise NetworkError(
                    f"forward delay for edge {edge} must be positive, "
                    f"got {delay}")
        self.partitions = (None if partitions is None
                           else min(partitions, count))
        lps = self.partitions or 1
        if only_partition is not None:
            if self.partitions is None:
                raise NetworkError("only_partition requires partitions")
            if not 0 <= only_partition < lps:
                raise NetworkError(
                    f"only_partition {only_partition} out of range "
                    f"(partitions={lps})")
        self.only_partition = only_partition
        #: recorder LPs: when partitioned, each cluster's recorder runs
        #: on its own engine (LP id ``partitions + cluster_index``)
        #: bridged to the cluster medium by zero-lookahead channels
        #: whose safety comes from next-event promises plus the
        #: medium's interpacket-gap spacing (see repro.system). Ignored
        #: for the serial reference engine.
        self.recorder_lps = bool(recorder_lps and self.partitions is not None)
        self.lockstep = lockstep
        self.batch_ms = batch_ms
        self.nodes_stride = nodes_stride
        self.gateway_service_ms = gateway_service_ms

        # Per-cluster configs: copied before the federation assigns the
        # id layout, so caller-owned config objects are never mutated.
        # Recorder shard ids live at ``first_node_id + 89 + j`` — inside
        # the cluster's stride block, so they stay globally unique at
        # any cluster count (the old ``90 + index`` scheme collided with
        # node ranges beyond ~10 clusters). Cluster 0 keeps id 90.
        from repro.cluster.placement import RECORDER_ID_OFFSET, policy_from_name
        self.configs: List[SystemConfig] = []
        self._node_sets: List[Set[int]] = []
        for index, size in enumerate(cluster_sizes):
            if configs is not None:
                config = replace(configs[index])
            else:
                config = SystemConfig(nodes=size, publishing=publishing)
            config.first_node_id = 1 + index * nodes_stride
            config.recorder_node_id = config.first_node_id + RECORDER_ID_OFFSET
            config.services_node = config.first_node_id
            if config.nodes > RECORDER_ID_OFFSET:
                raise NetworkError(
                    f"cluster {index} has {config.nodes} nodes; the id "
                    f"layout fits at most {RECORDER_ID_OFFSET} per cluster")
            nodes = set(range(
                config.first_node_id, config.first_node_id + config.nodes))
            if config.publishing:
                policy = policy_from_name(config.placement_policy,
                                          shards=config.recorder_shards)
                shard_count = policy.shard_count(config.nodes)
                if RECORDER_ID_OFFSET + shard_count > nodes_stride:
                    raise NetworkError(
                        f"cluster {index}: {shard_count} recorder shards "
                        f"do not fit in a node stride of {nodes_stride}")
                # Routable across gateways: a remote cluster can address
                # this cluster's recorders (cross-cluster recovery).
                nodes |= set(range(config.recorder_node_id,
                                   config.recorder_node_id + shard_count))
            self.configs.append(config)
            self._node_sets.append(nodes)

        def lp_of(index: int) -> int:
            return index * lps // count

        self.lp_of = lp_of
        local_lps = (tuple(range(lps)) if only_partition is None
                     else (only_partition,))
        self.engines: Dict[int, Engine] = {lp: Engine() for lp in local_lps}
        #: serial-compat handle (LP 0's engine when partitioned)
        self.engine = self.engines[min(self.engines)]
        #: cluster index -> System, local clusters only (all of them
        #: unless this is a slice)
        self.systems: Dict[int, System] = {}
        #: bridge channels of local recorder LPs (a subset of
        #: ``self.channels``); the recorder LP of cluster ``i`` has LP
        #: id ``partitions + i``
        self.bridge_channels: List[PartitionChannel] = []
        for index, config in enumerate(self.configs):
            lp = lp_of(index)
            if lp in self.engines:
                recorder_engine = None
                if self.recorder_lps and config.publishing:
                    recorder_engine = Engine()
                system = System(config, engine=self.engines[lp],
                                recorder_engine=recorder_engine)
                system.federation = self
                system.cluster_index = index
                self.systems[index] = system
                if recorder_engine is not None:
                    recorder_lp = lps + index
                    self.engines[recorder_lp] = recorder_engine
                    for channel in system.bridge_channels:
                        channel.src = (lp if channel.src == 0
                                       else recorder_lp)
                        channel.dst = (lp if channel.dst == 0
                                       else recorder_lp)
                        self.bridge_channels.append(channel)
        self.clusters: List[System] = [self.systems[i]
                                       for i in sorted(self.systems)]
        #: one :class:`DeadLetter` (gateway_id, frame, attempts) for
        #: every custody frame a gateway finally dropped — the
        #: federation's dead-letter ledger, same shape as
        #: ``System.dead_letters`` so losslessness checks sum both
        self.dead_letters: List[DeadLetter] = []

        self.gateways: List[Gateway] = []
        self.channels: List[PartitionChannel] = list(self.bridge_channels)
        for gid, src, dst in directed_gateways(count, topology, nodes_stride):
            src_lp, dst_lp = lp_of(src), lp_of(dst)
            delay = self.forward_delays.get((src, dst), forward_delay_ms)
            far_nodes = (lambda node, _far=self._node_sets[dst]: node in _far)
            if src_lp == dst_lp:
                if src_lp not in self.engines:
                    continue
                self.gateways.append(Gateway(
                    self.engines[src_lp], self.systems[src].medium,
                    self.systems[dst].medium, far_nodes,
                    forward_delay_ms=delay, gateway_id=gid,
                    service_ms=gateway_service_ms,
                    near_obs=self.systems[src].obs,
                    far_obs=self.systems[dst].obs,
                    on_drop=self._note_gateway_drop))
                continue
            if src_lp not in self.engines and dst_lp not in self.engines:
                continue
            channel = PartitionChannel(f"gw{gid}", src_lp, dst_lp,
                                       lookahead_ms=delay)
            forwarder = tap = None
            if dst_lp in self.engines:
                forwarder = GatewayForwarder(
                    self.engines[dst_lp], self.systems[dst].medium, gid,
                    service_ms=gateway_service_ms,
                    obs=self.systems[dst].obs,
                    on_drop=self._note_gateway_drop)
                channel.deliver = forwarder.accept
            if src_lp in self.engines:
                tap = GatewayTap(
                    self.engines[src_lp], self.systems[src].medium,
                    far_nodes, channel, delay, gid,
                    obs=self.systems[src].obs)
            self.gateways.append(Gateway.from_parts(gid, tap, forwarder))
            self.channels.append(channel)

        self.scheduler: Optional[PartitionedEngine] = None
        if self.partitions is not None and only_partition is None:
            self.scheduler = PartitionedEngine(
                dict(self.engines), self.channels,
                lockstep=lockstep, batch_ms=batch_ms)

    # ------------------------------------------------------------------
    def _note_gateway_drop(self, gateway_id: int, frame: Frame,
                           attempts: int) -> None:
        self.dead_letters.append(DeadLetter(gateway_id, frame, attempts))

    def gateway_edges(self) -> Dict[int, Tuple[int, int]]:
        """``gateway_id -> (src_cluster, dst_cluster)`` for every
        directed edge of the topology — including edges whose gateway
        object lives on a remote slice."""
        return {gid: (src, dst) for gid, src, dst in directed_gateways(
            len(self.configs), self.topology, self.nodes_stride)}

    @property
    def now(self) -> float:
        """Current federation time (the last barrier when partitioned)."""
        if self.scheduler is not None:
            return self.scheduler.now
        return self.engine.now

    def boot(self, settle_ms: float = 500.0) -> None:
        for system in self.clusters:
            system.boot(settle_ms=0.0)
        self.run(settle_ms)
        for system in self.clusters:
            if system.config.publishing:
                system.checkpoint_all()

    def run(self, duration_ms: float) -> float:
        if self.only_partition is not None:
            raise NetworkError(
                "a federation slice is driven by its pool master, "
                "not run() (see repro.parallel.des)")
        if self.scheduler is not None:
            return self.scheduler.run(until=self.scheduler.now + duration_ms)
        return self.engine.run(until=self.engine.now + duration_ms)

    def local_scheduler(self) -> PartitionedEngine:
        """A scheduler over this slice's engines and fully-local channels.

        Pool workers drive their slice with this: the parent's window
        grants bound how far the whole group may run, while the local
        scheduler handles the intra-worker micro-windows (cluster medium
        <-> recorder LP bridges) without any pipe traffic. Channels with
        a remote end are excluded — the pool master exchanges those.
        """
        local = dict(self.engines)
        channels = [c for c in self.channels
                    if c.src in local and c.dst in local]
        return PartitionedEngine(local, channels, batch_ms=self.batch_ms)

    def cluster_of(self, node_id: int) -> System:
        for index, nodes in enumerate(self._node_sets):
            if node_id in nodes:
                system = self.systems.get(index)
                if system is None:
                    raise NetworkError(
                        f"node {node_id} belongs to cluster {index}, which "
                        f"is outside this federation slice")
                return system
        raise NetworkError(f"node {node_id} is in no cluster")

    def placements(self) -> List[object]:
        """Each local cluster's shard map (None for unsharded clusters)."""
        return [system.placement for system in self.clusters]

    # ------------------------------------------------------------------
    # cross-cluster recovery (§6.2 autonomous control, sharded)
    # ------------------------------------------------------------------
    def neighbours_of(self, cluster_index: int) -> List[int]:
        """Clusters sharing a gateway edge with ``cluster_index``."""
        return sorted(
            b if a == cluster_index else a
            for a, b in federation_edges(len(self.configs), self.topology)
            if cluster_index in (a, b))

    def _pick_helper(self, home_index: int) -> int:
        """The deterministic helper for a cross-cluster recovery: the
        lowest-indexed gateway neighbour whose primary recorder is up
        (the primary claims cross-cluster traffic, so it holds the
        passive replay log a remote recovery replays from)."""
        for index in self.neighbours_of(home_index):
            system = self.systems.get(index)
            if (system is not None and system.recorder is not None
                    and system.recorder.up):
                return index
        raise NetworkError(
            f"no gateway neighbour of cluster {home_index} has a live "
            f"recorder to recover from")

    def remote_recover(self, node_id: int,
                       helper: Optional[int] = None) -> int:
        """Recover every process on ``node_id`` by replaying from a
        *remote* cluster's recorder, routed through the gateways.

        The §6.2 escape hatch for a cluster whose own recorder shard is
        down: a gateway neighbour's primary recorder passively recorded
        the cross-cluster traffic (its tap claim doubles as the
        delivery observation), so it holds a replay log for the
        destination in its own medium's reception order. Process
        metadata (image, args, links) is copied from the home shard's
        stable-storage database — the publishing disk survives the
        recorder crash (§4.5) — while the message log replayed is the
        helper's own. The helper's recreate/replay/marker controls are
        ordinary guaranteed traffic and cross the fabric through the
        store-and-forward gateways.

        Returns how many process recoveries were started.
        """
        home = self.cluster_of(node_id)
        if helper is None:
            helper = self._pick_helper(home.cluster_index)
        helper_sys = self.systems.get(helper)
        if helper_sys is None:
            raise NetworkError(f"cluster {helper} is outside this slice")
        recorder = helper_sys.recorder
        manager = helper_sys.recovery
        if recorder is None or not recorder.up or manager is None:
            raise NetworkError(
                f"cluster {helper} has no live recorder to replay from")
        # The home shard's database survives on stable storage even
        # when the recorder process is down (§4.5).
        if home.placement is not None:
            home_recorder = home.recorders[
                home.placement.shard_for(node_id).index]
        else:
            home_recorder = home.recorder
        if home_recorder is None:
            raise NetworkError(
                f"cluster {home.cluster_index} has no recorder database "
                f"to read process metadata from")
        home.restart_node(node_id)
        started = 0
        for record in home_recorder.db.processes_on(node_id):
            if record.image == "" or record.recovering:
                continue
            mine = recorder.db.create(
                record.pid, node=record.node, image=record.image,
                args=record.args, initial_links=record.initial_links,
                recoverable=record.recoverable,
                state_pages=record.state_pages)
            if mine.image == "":
                # Fill a placeholder the helper created from passive
                # message traffic before any metadata was known.
                mine.image = record.image
                mine.args = record.args
                mine.initial_links = record.initial_links
                mine.recoverable = record.recoverable
                mine.state_pages = record.state_pages
                mine.node = record.node
            if manager.start_recovery(mine, target_node=node_id):
                started += 1
        helper_sys.obs.registry.counter(
            "recorder.placement.remote_recoveries").inc(started)
        return started

    # ------------------------------------------------------------------
    # the merged observability spine
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, object]:
        """Every cluster's metrics in one snapshot, keys prefixed
        ``cluster.<index>.`` — the per-LP registries merged back into a
        single spine view."""
        return merge_snapshots(
            (f"cluster.{index}", self.systems[index].metrics_snapshot())
            for index in sorted(self.systems))

    def merged_events(self) -> List[Dict[str, object]]:
        """Every cluster's trace events as one time-ordered stream;
        each record carries its ``cluster`` label. Ties on time keep
        cluster-index order (per-cluster order is always preserved)."""
        return merge_event_streams(
            (f"cluster.{index}", self.systems[index].obs.bus)
            for index in sorted(self.systems))

    def event_stream(self) -> str:
        """:meth:`merged_events` as JSON lines."""
        return "\n".join(json.dumps(record, sort_keys=True)
                         for record in self.merged_events())
