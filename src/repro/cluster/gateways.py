"""LAN clusters joined by store-and-forward gateways (§6.2).

"More likely are cluster configurations made up of a number of
broadcast media networks connected via a store and forward network. ...
In these networks, a recorder can be attached to each cluster to
perform recovery for that cluster alone. The great advantage to this
scheme is autonomous control."

A :class:`Gateway` bridges two broadcast media: it claims frames whose
destination lives on the far side, takes custody (the near medium's
hardware ack completes the original sender's transmission), and
re-offers them on the far medium with itself as the frame-level source,
retrying until the far side — including its recorder — accepts. The far
cluster's recorder therefore publishes inter-cluster messages exactly
like local ones, and each recorder recovers only its own processes.

:class:`ClusterFederation` builds N :class:`repro.system.System`
clusters on one engine with disjoint node-id ranges and full-mesh
gateways.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.net.frames import Frame, FrameKind
from repro.net.media import Medium, NetworkInterface
from repro.sim.engine import Engine
from repro.system import System, SystemConfig

#: Each gateway consumes two interface ids (near and far side).
_gateway_ids = itertools.count(9000, 2)


class Gateway:
    """A one-directional store-and-forward bridge between two media.

    Use two (one per direction) or the :func:`bridge` helper for a
    bidirectional pair.
    """

    def __init__(self, engine: Engine, near: Medium, far: Medium,
                 far_nodes: Callable[[int], bool],
                 forward_delay_ms: float = 5.0,
                 retry_ms: float = 50.0, max_retries: int = 100):
        self.engine = engine
        self.near = near
        self.far = far
        self.far_nodes = far_nodes
        self.forward_delay_ms = forward_delay_ms
        self.retry_ms = retry_ms
        self.max_retries = max_retries
        self.gateway_id = next(_gateway_ids)
        self.frames_forwarded = 0
        self.retries = 0
        self._awaiting: Dict[int, int] = {}    # frame_id -> attempts
        self._originals: Dict[int, Frame] = {}  # frame_id -> original frame
        self.near_iface = NetworkInterface(
            self.gateway_id, self._on_near_frame,
            accept_extra=self.far_nodes)
        near.attach(self.near_iface)
        self.far_iface = NetworkInterface(
            self.gateway_id + 1, lambda frame: None,
            on_delivered=self._on_far_delivered)
        far.attach(self.far_iface)

    # ------------------------------------------------------------------
    def _on_near_frame(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.DATA:
            return
        if not self.far_nodes(frame.dst_node):
            return
        if not frame.checksum_ok():
            return   # the near sender's transport will retry
        self.engine.schedule(self.forward_delay_ms, self._forward, frame, 0)

    def _forward(self, frame: Frame, attempt: int) -> None:
        if attempt >= self.max_retries:
            return
        clone = frame.clone_for(frame.dst_node)
        # The gateway takes custody: it is the frame-level source on the
        # far medium, so the far medium's hardware ack comes back here.
        clone.src_node = self.far_iface.node_id
        clone.recorder_acked = False
        self._awaiting[clone.frame_id] = attempt
        self._originals[clone.frame_id] = frame
        self.frames_forwarded += 1
        self.far_iface.send(clone)

    def _on_far_delivered(self, frame: Frame, ok: bool) -> None:
        attempt = self._awaiting.pop(frame.frame_id, None)
        if attempt is None:
            return
        original = self._originals.pop(frame.frame_id, None)
        if ok or original is None:
            return
        self.retries += 1
        self.engine.schedule(self.retry_ms, self._forward, original, attempt + 1)


def bridge(engine: Engine, medium_a: Medium, medium_b: Medium,
           a_nodes: Set[int], b_nodes: Set[int],
           forward_delay_ms: float = 5.0) -> Tuple[Gateway, Gateway]:
    """A bidirectional gateway pair between two cluster media."""
    a_to_b = Gateway(engine, medium_a, medium_b,
                     far_nodes=lambda n: n in b_nodes,
                     forward_delay_ms=forward_delay_ms)
    b_to_a = Gateway(engine, medium_b, medium_a,
                     far_nodes=lambda n: n in a_nodes,
                     forward_delay_ms=forward_delay_ms)
    return a_to_b, b_to_a


class ClusterFederation:
    """Several publishing clusters on one engine, fully bridged.

    Each cluster is an independent :class:`System` — own medium, own
    recorder, own recovery manager ("each cluster can decide for itself
    how and whether or not it will perform recovery") — with disjoint
    node-id ranges so pids are globally unambiguous.
    """

    def __init__(self, cluster_sizes: List[int], nodes_stride: int = 100,
                 forward_delay_ms: float = 5.0, publishing: bool = True,
                 configs: Optional[List[SystemConfig]] = None):
        if not cluster_sizes:
            raise NetworkError("a federation needs at least one cluster")
        self.engine = Engine()
        self.clusters: List[System] = []
        self.gateways: List[Gateway] = []
        self._node_sets: List[Set[int]] = []
        for index, size in enumerate(cluster_sizes):
            if configs is not None:
                config = configs[index]
            else:
                config = SystemConfig(nodes=size, publishing=publishing)
            config.first_node_id = 1 + index * nodes_stride
            config.recorder_node_id = 90 + index
            config.services_node = config.first_node_id
            system = System(config, engine=self.engine)
            self.clusters.append(system)
            self._node_sets.append(set(system.nodes))
        for i in range(len(self.clusters)):
            for j in range(i + 1, len(self.clusters)):
                pair = bridge(self.engine,
                              self.clusters[i].medium, self.clusters[j].medium,
                              self._node_sets[i], self._node_sets[j],
                              forward_delay_ms=forward_delay_ms)
                self.gateways.extend(pair)

    def boot(self, settle_ms: float = 500.0) -> None:
        for system in self.clusters:
            system.boot(settle_ms=0.0)
        self.run(settle_ms)
        for system in self.clusters:
            if system.config.publishing:
                system.checkpoint_all()

    def run(self, duration_ms: float) -> float:
        return self.engine.run(until=self.engine.now + duration_ms)

    def cluster_of(self, node_id: int) -> System:
        for index, nodes in enumerate(self._node_sets):
            if node_id in nodes:
                return self.clusters[index]
        raise NetworkError(f"node {node_id} is in no cluster")
