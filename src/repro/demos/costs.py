"""The cost model reproducing the Chapter 5 measurements.

Figure 5.7's exact cell values are partially illegible in our source
text, but the surrounding narrative pins down every relationship:

* without publishing, the send-to-self round trip costs the kernel 9 ms
  of CPU and 10 ms of real time ("the 1 ms difference between the CPU
  time used by the kernel and the elapsed real time is the time used by
  the user process");
* with publishing, "an additional 2 ms are spent in transmitting the
  message over the network medium" and "the additional 26 ms of CPU time
  ... is due entirely to the network protocol and to the servicing of
  the network device interrupts", i.e. 35 ms CPU / 38 ms real;
* of the protocol cost, "less than 1 ms is attributable to copying the
  message into and out of device buffers".

§5.2.2 fixes the recorder-side cost of publishing one message: 57 ms as
first implemented, 12 ms after inlining subroutine calls, and 0.8 ms
when messages are intercepted at the media layer (the figure the queuing
model assumes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """CPU costs (ms) charged by kernels, nodes, and the recorder."""

    # --- per kernel call, paid on the calling node ---------------------
    send_cpu_ms: float = 5.0          # send-message kernel call
    recv_cpu_ms: float = 4.0          # receive-message kernel call
    link_call_cpu_ms: float = 0.5     # create/destroy/move-link calls

    # --- the network protocol tax publishing adds ----------------------
    #: CPU spent driving the protocol + interrupts per published message,
    #: split between the sending and receiving sides. Together they are
    #: the thesis's "additional 26 ms".
    net_protocol_send_cpu_ms: float = 13.0
    net_protocol_recv_cpu_ms: float = 13.0

    # --- user code ------------------------------------------------------
    user_handler_cpu_ms: float = 1.0  # default charge per delivered message

    # --- process control -------------------------------------------------
    create_process_cpu_ms: float = 3.0   # per stage of the control chain
    destroy_process_cpu_ms: float = 2.0

    # --- recorder-side publishing cost (§5.2.2) --------------------------
    #: Selectable software paths for the recorder's per-message work.
    publish_cpu_full_protocol_ms: float = 57.0   # all layers, subroutine calls
    publish_cpu_inlined_ms: float = 12.0         # after inlining
    publish_cpu_media_tap_ms: float = 0.8        # intercepted at media layer

    # --- checkpointing ----------------------------------------------------
    checkpoint_cpu_per_page_ms: float = 1.0
    page_bytes: int = 1024

    def message_cpu_ms(self, published: bool, side: str) -> float:
        """Kernel CPU for one message on one side ('send' or 'recv')."""
        if side == "send":
            cost = self.send_cpu_ms
            if published:
                cost += self.net_protocol_send_cpu_ms
        elif side == "recv":
            cost = self.recv_cpu_ms
            if published:
                cost += self.net_protocol_recv_cpu_ms
        else:
            raise ValueError(f"side must be 'send' or 'recv', got {side!r}")
        return cost

    def publish_cpu_ms(self, path: str = "inlined") -> float:
        """The recorder's CPU per published message for a software path."""
        paths = {
            "full_protocol": self.publish_cpu_full_protocol_ms,
            "inlined": self.publish_cpu_inlined_ms,
            "media_tap": self.publish_cpu_media_tap_ms,
        }
        try:
            return paths[path]
        except KeyError:
            raise ValueError(
                f"unknown publish path {path!r}; expected one of {sorted(paths)}"
            ) from None
