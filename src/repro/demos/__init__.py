"""The DEMOS/MP substrate (Chapter 4).

A Python reimplementation of the message-based operating system the
thesis added publishing to:

* links, channels, and messages (§4.2.2) — capabilities, selective
  receive, and the three-part message;
* the message kernel (§4.2.1) — all IPC goes through kernel calls;
* the kernel process (§4.2.3) — create/destroy/control of processes,
  including the DELIVERTOKERNEL mechanism and the MOVELINK exchange that
  §4.4.3 introduces to keep all interactions message-based;
* the memory scheduler and process manager (§4.2.3, §4.3.2) — the
  three-process control chain, one message hop per stage;
* network-wide process names (§4.3.1) — ``ProcessId = (node, local)``;
* nodes, a CPU model, and the cost model reproducing the Figure 5.7/5.8
  measurements.
"""

from repro.demos.ids import KERNEL_LOCAL_ID, MessageId, ProcessId, kernel_pid
from repro.demos.links import Link, LinkTable
from repro.demos.messages import Control, DeliveredMessage, Message
from repro.demos.costs import CostModel
from repro.demos.process import (
    GeneratorProgram,
    ProcessState,
    Program,
    ProgramRegistry,
    Recv,
)
from repro.demos.kernel import KernelConfig, MessageKernel, NodeCpu, ProcessContext
from repro.demos.kernel_process import KERNEL_PROCESS_IMAGE, KernelProcessProgram
from repro.demos.sysprocs import (
    MS_IMAGE,
    NLS_IMAGE,
    PM_IMAGE,
    PM_NAME,
    MemoryScheduler,
    NamedLinkServer,
    ProcessManager,
)
from repro.demos.node import Node

__all__ = [
    "KERNEL_LOCAL_ID",
    "MessageId",
    "ProcessId",
    "kernel_pid",
    "Link",
    "LinkTable",
    "Control",
    "DeliveredMessage",
    "Message",
    "CostModel",
    "GeneratorProgram",
    "ProcessState",
    "Program",
    "ProgramRegistry",
    "Recv",
    "KernelConfig",
    "MessageKernel",
    "NodeCpu",
    "ProcessContext",
    "KERNEL_PROCESS_IMAGE",
    "KernelProcessProgram",
    "MS_IMAGE",
    "NLS_IMAGE",
    "PM_IMAGE",
    "PM_NAME",
    "MemoryScheduler",
    "NamedLinkServer",
    "ProcessManager",
    "Node",
]
