"""Messages and kernel-level control payloads.

"Messages consist of three parts: a header, a passed link, and a body.
The header contains the code and channel of the message in addition to
information needed to route the message to the correct process. These
fields are obtained from the link over which the message is sent"
(§4.2.2.3).

A :class:`Control` is not a DEMOS message: it is kernel↔kernel /
kernel↔recorder protocol (watchdog pings, creation notices, checkpoints,
recreate and replay traffic). Controls ride the same transport but are
handled below the process level and — except where noted — are not
published.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Optional

from repro.demos.ids import MessageId, ProcessId
from repro.demos.links import Link

# Messages are the highest-volume allocation in a busy simulation, so
# the classes below are slotted where the runtime supports it (slotted
# frozen dataclasses need Python >= 3.10; 3.9 just loses the memory
# saving, nothing else).
if sys.version_info >= (3, 10):
    _frozen = partial(dataclass, frozen=True, slots=True)
else:                                           # pragma: no cover
    _frozen = partial(dataclass, frozen=True)

#: Default and maximum body sizes, matching the queuing model's short
#: (128-byte) and long (1024-byte) message classes (§5.1).
DEFAULT_BODY_BYTES = 128
MAX_BODY_BYTES = 1024


@_frozen()
class Message:
    """One DEMOS message in flight or in a queue."""

    msg_id: MessageId            # (sender pid, sender's send sequence)
    src: ProcessId
    dst: ProcessId
    channel: int
    code: int
    body: Any
    passed_link: Optional[Link] = None
    size_bytes: int = DEFAULT_BODY_BYTES
    deliver_to_kernel: bool = False
    #: Set on the marker the recovery process uses to hand a recovering
    #: process back to live traffic (see publishing.recovery_manager).
    recovery_marker: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.size_bytes <= MAX_BODY_BYTES:
            raise ValueError(
                f"message body must be 1..{MAX_BODY_BYTES} bytes, "
                f"got {self.size_bytes}")


@_frozen()
class DeliveredMessage:
    """What a program's ``on_message`` handler sees.

    The kernel has already moved any passed link into the receiver's
    link table; ``passed_link_id`` is its id there ("the receiver is
    told the link id of the link").
    """

    code: int
    channel: int
    body: Any
    src: ProcessId
    passed_link_id: Optional[int] = None


_control_counter = itertools.count(1)


@_frozen()
class Control:
    """A kernel-level protocol datagram.

    ``kind`` values used across the system:

    * ``are_you_alive`` / ``alive_reply`` — watchdog protocol (§4.6);
    * ``process_created`` / ``process_destroyed`` — recorder notices (§4.5);
    * ``process_crashed`` — trap report to the recovery manager (§3.3.2);
    * ``checkpoint`` — a process checkpoint bound for the recorder;
    * ``read_order`` — out-of-order channel-read advisory (§4.4.2);
    * ``recreate`` / ``recreate_ok`` — recovery restart request (§4.7);
    * ``replay`` — one published message re-sent to a recovering process;
    * ``recovery_done`` — recovery process signing off;
    * ``state_query`` / ``state_reply`` — recorder restart protocol (§3.3.4),
      stamped with the restart number so stale replies are ignored (§3.4);
    * ``recover_offer`` / ``recover_answer`` — multi-recorder coordination
      (§6.3).
    """

    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_control_counter))

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)
