"""The DEMOS/MP message kernel (§4.2, §4.4, §4.5).

One :class:`MessageKernel` runs per node. It owns every process control
record on the node, implements the kernel calls processes use to
communicate, routes messages through the transport layer, and carries
the publishing hooks:

* with publishing enabled, **all** messages — including intranode ones —
  are sent on the network "before routing them to the intended process"
  (§4.4.1), so the recorder overhears everything;
* when a channel-selective receive reads a message that is not the queue
  head, the kernel advises the recorder of the read order (§4.4.2);
* the kernel notifies the recorder of process creation and destruction
  (§4.5);
* during recovery the kernel runs the receiving half of the §4.7
  protocol: recreate requests, replay injection, suppression of
  regenerated sends, and the hand-back to live traffic.

CPU time is charged to the node per kernel call according to the
:class:`~repro.demos.costs.CostModel`, which is what makes the
Figure 5.7/5.8 measurement programs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.demos.costs import CostModel
from repro.demos.ids import KERNEL_LOCAL_ID, MessageId, ProcessId, kernel_pid
from repro.demos.links import Link, LinkTable
from repro.demos.messages import Control, DeliveredMessage, Message
from repro.demos.process import (
    ProcessControlRecord,
    ProcessState,
    ProgramBase,
    ProgramRegistry,
)
from repro.errors import KernelError, ProcessError
from repro.net.media import Medium
from repro.net.transport import Segment, Transport, TransportConfig
from repro.obs import MetricsRegistry, Observability
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog


@dataclass
class KernelConfig:
    """Per-node kernel configuration."""

    publishing: bool = True
    recorder_node: Optional[int] = None
    costs: CostModel = field(default_factory=CostModel)
    transport: TransportConfig = field(default_factory=TransportConfig)
    #: §6.6.1 — if False, messages to non-recoverable processes on the
    #: same node skip the network entirely.
    broadcast_unrecoverable_intranode: bool = False


class NodeCpu:
    """A serialized CPU with busy-time accounting.

    ``charge`` extends the busy horizon (synchronous work inside a
    kernel call); ``run`` schedules a callback for when the CPU reaches
    it (asynchronous work like message delivery). The CPU clocks live in
    the unified metrics registry (``<prefix>.kernel_ms`` /
    ``<prefix>.user_ms``) so ``registry.snapshot()`` is the one read
    path; ``cpu.kernel_ms`` stays available as a compatibility property.
    """

    def __init__(self, engine: Engine,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = "cpu"):
        self.engine = engine
        self._busy_until = 0.0
        registry = registry or MetricsRegistry()
        self._kernel_ms = registry.counter(f"{prefix}.kernel_ms")
        self._user_ms = registry.counter(f"{prefix}.user_ms")

    @property
    def kernel_ms(self) -> float:
        return self._kernel_ms.value

    @property
    def user_ms(self) -> float:
        return self._user_ms.value

    @property
    def busy_until(self) -> float:
        return max(self._busy_until, self.engine.now)

    def charge(self, duration: float, user: bool = False) -> float:
        """Consume ``duration`` ms of CPU; returns the completion time."""
        start = self.busy_until
        self._busy_until = start + duration
        if user:
            self._user_ms.inc(duration)
        else:
            self._kernel_ms.inc(duration)
        return self._busy_until

    def run(self, duration: float, fn: Callable[..., Any], *args: Any,
            user: bool = False) -> None:
        """Charge ``duration`` and invoke ``fn`` when the CPU gets there."""
        done_at = self.charge(duration, user=user)
        self.engine.schedule_at(done_at, fn, *args)

    def reset(self) -> None:
        """Forget the busy horizon (node restart)."""
        self._busy_until = 0.0

    @property
    def total_ms(self) -> float:
        return self.kernel_ms + self.user_ms


class ProcessContext:
    """The API surface a program sees. Every method is a kernel call."""

    def __init__(self, kernel: "MessageKernel", pcb: ProcessControlRecord):
        self._kernel = kernel
        self._pcb = pcb

    @property
    def pid(self) -> ProcessId:
        """This process's network-wide name."""
        return self._pcb.pid

    @property
    def node(self) -> int:
        """The node the process is currently running on."""
        return self._kernel.node_id

    # -- link calls -------------------------------------------------------
    def create_link(self, channel: int = 0, code: int = 0) -> int:
        """Create a link to this process; returns its link id (§4.2.2.1)."""
        return self._kernel.syscall_create_link(self._pcb, channel, code)

    def destroy_link(self, link_id: int) -> bool:
        """Destroy a link in this process's table."""
        return self._kernel.syscall_destroy_link(self._pcb, link_id)

    def link_target(self, link_id: int) -> Optional[ProcessId]:
        """Peek at where a held link points (diagnostic; read-only)."""
        if not self._pcb.links.has(link_id):
            return None
        return self._pcb.links.get(link_id).dst

    # -- messaging ---------------------------------------------------------
    def send(self, link_id: int, body: Any, pass_link_id: Optional[int] = None,
             size_bytes: int = 128, keep_link: bool = False) -> bool:
        """Send ``body`` over a held link; returns a condition code.

        ``pass_link_id`` moves a held link into the message (§4.2.2.3);
        with ``keep_link=True`` a duplicate is passed instead.
        """
        return self._kernel.syscall_send(self._pcb, link_id, body,
                                         pass_link_id, size_bytes, keep_link)

    def set_channels(self, *channels: int) -> None:
        """Restrict future receives to the given channels (actors)."""
        program = self._pcb.program
        program._channels = tuple(channels) if channels else None

    # -- process control ------------------------------------------------
    def exit(self) -> None:
        """Terminate this process normally."""
        self._kernel.syscall_exit(self._pcb)

    def log(self, text: str, **detail: Any) -> None:
        """Emit a trace record attributed to this process."""
        self._kernel.trace.emit("program", str(self.pid), text=text, **detail)


class MessageKernel:
    """The message kernel of one DEMOS/MP node."""

    def __init__(self, engine: Engine, node_id: int, medium: Medium,
                 config: KernelConfig, registry: ProgramRegistry,
                 trace: Optional[TraceLog] = None,
                 obs: Optional[Observability] = None,
                 rng=None):
        self.engine = engine
        self.node_id = node_id
        self.config = config
        self.registry = registry
        #: instrumentation spine: shared when the System provides one,
        #: otherwise rides the medium's (so standalone kernels still
        #: land on the same registry as their medium and transport)
        self.obs = obs if obs is not None else medium.obs
        if trace is not None:
            self.trace = trace
        else:
            self.trace = TraceLog(bus=self.obs.bus,
                                  scope=f"kernel.{node_id}")
        self.cpu = NodeCpu(engine, self.obs.registry,
                           f"kernel.{node_id}.cpu")
        self.processes: Dict[ProcessId, ProcessControlRecord] = {}
        self._next_local_id = 1
        self._control_seq = 0
        self.control_handlers: Dict[str, Callable[[Control, int], None]] = {}
        #: handler for DELIVERTOKERNEL messages, set by the kernel process
        self.dtk_handler: Optional[Callable[[Message], None]] = None
        self.up = True
        #: recovery hand-back bookkeeping, per recovering pid
        self._marker_seen: Dict[ProcessId, bool] = {}
        self._held_live: Dict[ProcessId, List[Message]] = {}
        #: invoked after each delivery; the checkpoint policy hooks in here
        self.after_delivery: Optional[Callable[[ProcessControlRecord], None]] = None
        #: invoked on process crash reports, creation, destruction
        self.transport = Transport(engine, medium, node_id, self._on_segment,
                                   config.transport, obs=self.obs, rng=rng)
        self._messages_sent = self.obs.registry.counter(
            f"kernel.{node_id}.messages_sent")
        self._messages_delivered = self.obs.registry.counter(
            f"kernel.{node_id}.messages_delivered")
        self._processes_gauge = self.obs.registry.gauge_fn(
            f"kernel.{node_id}.processes", lambda: len(self.processes))

    @property
    def messages_sent(self) -> int:
        return self._messages_sent.value

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered.value

    # ------------------------------------------------------------------
    # process lifetime (primitives used by the kernel process)
    # ------------------------------------------------------------------
    def allocate_pid(self) -> ProcessId:
        """A fresh network-wide pid named after this node (§4.3.1)."""
        pid = ProcessId(self.node_id, self._next_local_id)
        self._next_local_id += 1
        return pid

    def create_process(self, image: str, args: Tuple = (),
                       pid: Optional[ProcessId] = None,
                       initial_links: Tuple[Link, ...] = (),
                       recoverable: bool = True,
                       state_pages: int = 4,
                       notify_recorder: bool = True) -> ProcessId:
        """Instantiate a program and start it running.

        ``initial_links`` are inserted into the new process's table
        before it runs ("the creating process may insert a number of
        initial links into the new process's link table").
        """
        if pid is None:
            pid = self.allocate_pid()
        if pid in self.processes and self.processes[pid].state is not ProcessState.DEAD:
            raise ProcessError(f"pid {pid} already exists on node {self.node_id}")
        program = self.registry.instantiate(image, args)
        if hasattr(program, "attach_kernel"):
            program.attach_kernel(self)     # kernel-resident programs only
        pcb = ProcessControlRecord(pid=pid, image=image, args=args,
                                   program=program, recoverable=recoverable,
                                   state_pages=state_pages)
        pcb.last_checkpoint_time = self.engine.now
        for link in initial_links:
            pcb.links.insert(link)
        self.processes[pid] = pcb
        self.trace.emit("process", str(pid), event="created", image=image)
        if notify_recorder and self.config.publishing:
            self.send_control_to_recorder(Control("process_created", {
                "pid": pid, "image": image, "args": args,
                "initial_links": tuple(initial_links),
                "recoverable": recoverable, "state_pages": state_pages,
                "node": self.node_id,
            }))
        ctx = ProcessContext(self, pcb)
        self.cpu.run(self.config.costs.create_process_cpu_ms,
                     self._start_program, pcb, ctx)
        return pid

    def _start_program(self, pcb: ProcessControlRecord, ctx: ProcessContext) -> None:
        if pcb.state is ProcessState.DEAD:
            return
        pcb.program.start(ctx)
        self._pump(pcb)

    def destroy_process(self, pid: ProcessId, notify_recorder: bool = True) -> None:
        """Remove a process and everything the kernel holds for it."""
        pcb = self.processes.get(pid)
        if pcb is None:
            return
        pcb.state = ProcessState.DEAD
        pcb.queue.clear()
        self._marker_seen.pop(pid, None)
        self._held_live.pop(pid, None)
        self.cpu.charge(self.config.costs.destroy_process_cpu_ms)
        self.trace.emit("process", str(pid), event="destroyed")
        if notify_recorder and self.config.publishing:
            self.send_control_to_recorder(Control("process_destroyed",
                                                  {"pid": pid, "node": self.node_id}))

    # ------------------------------------------------------------------
    # kernel calls
    # ------------------------------------------------------------------
    def syscall_create_link(self, pcb: ProcessControlRecord,
                            channel: int, code: int) -> int:
        self.cpu.charge(self.config.costs.link_call_cpu_ms)
        return pcb.links.insert(Link(dst=pcb.pid, channel=channel, code=code))

    def syscall_destroy_link(self, pcb: ProcessControlRecord, link_id: int) -> bool:
        self.cpu.charge(self.config.costs.link_call_cpu_ms)
        if not pcb.links.has(link_id):
            return False
        pcb.links.remove(link_id)
        return True

    def syscall_send(self, pcb: ProcessControlRecord, link_id: int, body: Any,
                     pass_link_id: Optional[int], size_bytes: int,
                     keep_link: bool = False) -> bool:
        if not pcb.links.has(link_id):
            return False
        link = pcb.links.get(link_id)
        passed: Optional[Link] = None
        if pass_link_id is not None:
            if not pcb.links.has(pass_link_id):
                return False
            if keep_link:
                # Duplicate-and-pass: the sender retains its copy (used
                # by servers handing out links to many clients).
                passed = pcb.links.get(pass_link_id)
            else:
                passed = pcb.links.remove(pass_link_id)
        pcb.send_seq += 1
        message = Message(
            msg_id=MessageId(pcb.pid, pcb.send_seq),
            src=pcb.pid, dst=link.dst, channel=link.channel, code=link.code,
            body=body, passed_link=passed, size_bytes=size_bytes,
            deliver_to_kernel=link.deliver_to_kernel,
        )
        self.send_message(message, from_pcb=pcb)
        return True

    def syscall_exit(self, pcb: ProcessControlRecord) -> None:
        self.destroy_process(pcb.pid)

    # ------------------------------------------------------------------
    # message routing
    # ------------------------------------------------------------------
    def send_message(self, message: Message,
                     from_pcb: Optional[ProcessControlRecord] = None) -> None:
        """Route a message: onto the network, or directly for the cases
        publishing does not require on the wire."""
        published = self._is_published(message)
        done_at = self.cpu.charge(self.config.costs.message_cpu_ms(published, "send"))
        if (from_pcb is not None
                and message.msg_id.seq <= from_pcb.suppress_send_through):
            # A regenerated message the original already sent: the new
            # kernel "will not send any messages with ids less than this
            # id" (§4.7). The rule outlives the RECOVERING state — the
            # process may still be re-executing queued inputs after the
            # replay stream ended, and stays suppressed "until the
            # process sends a message it had not sent before the crash".
            self.trace.emit("recovery", str(from_pcb.pid),
                            event="suppressed_send", seq=message.msg_id.seq)
            return
        self._messages_sent.inc()
        # The message leaves the kernel when the send call's CPU work is
        # done; scheduling through the engine keeps submissions FIFO.
        self.engine.schedule_at(done_at, self._submit, message, published)

    def _submit(self, message: Message, published: bool) -> None:
        if not self.up:
            return
        if not published and message.dst.node == self.node_id:
            # Unpublished intranode message: straight to the queue.
            self.deliver_local(message)
            return
        self.transport.send(message.dst.node, message,
                            size_bytes=message.size_bytes,
                            uid=tuple(message.msg_id))

    def _is_published(self, message: Message) -> bool:
        """Does this message have to travel the network for the recorder?"""
        if not self.config.publishing:
            return False
        if message.dst.node != self.node_id:
            return True
        if self.config.broadcast_unrecoverable_intranode:
            return True
        dst_pcb = self.processes.get(message.dst)
        if dst_pcb is not None and not dst_pcb.recoverable:
            return False        # §6.6.1: don't pay for the unrecoverable
        return True

    def send_control(self, dst_node: int, control: Control,
                     guaranteed: bool = True, size_bytes: int = 64) -> None:
        """Send a kernel-level control datagram to another node."""
        self._control_seq += 1
        self.transport.send(dst_node, control, size_bytes=size_bytes,
                            uid=("ctl", self.node_id, self._control_seq),
                            guaranteed=guaranteed)

    def send_control_to_recorder(self, control: Control,
                                 guaranteed: bool = True,
                                 size_bytes: int = 64) -> None:
        """Send a control to the recorder node, if one is configured."""
        if self.config.recorder_node is None:
            return
        self.send_control(self.config.recorder_node, control,
                          guaranteed=guaranteed, size_bytes=size_bytes)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_segment(self, segment: Segment) -> None:
        if not self.up:
            return
        body = segment.body
        if isinstance(body, Message):
            published = self.config.publishing
            self.cpu.charge(self.config.costs.message_cpu_ms(published, "recv")
                            - self.config.costs.recv_cpu_ms)
            self.deliver_local(body)
        elif isinstance(body, Control):
            handler = self.control_handlers.get(body.kind)
            if handler is not None:
                handler(body, segment.src_node)
        else:
            raise KernelError(f"unroutable segment body: {body!r}")

    def deliver_local(self, message: Message) -> None:
        """Hand an arriving message to its destination on this node."""
        pcb = self.processes.get(message.dst)
        if pcb is not None and pcb.state is ProcessState.RECOVERING:
            # Everything addressed to a recovering process — including
            # control traffic — is discarded or held; the recorder
            # replays it in stream order.
            self._live_message_while_recovering(pcb, message)
            return
        if message.deliver_to_kernel:
            # DELIVERTOKERNEL: "it passes the message, not to the process
            # to which it is addressed, but to the kernel process
            # residing on its node" (§4.4.3).
            self._execute_dtk(message)
            return
        if pcb is None or pcb.state is ProcessState.DEAD:
            self.trace.emit("kernel", str(message.dst), event="drop_no_process")
            return
        if message.recovery_marker:
            return   # stale marker from a finished recovery; ignore
        self._enqueue(pcb, message)

    def _execute_dtk(self, message: Message) -> None:
        pcb = self.processes.get(message.dst)
        if pcb is not None:
            pcb.dtk_processed += 1
        if self.dtk_handler is not None:
            self.dtk_handler(message)

    def _live_message_while_recovering(self, pcb: ProcessControlRecord,
                                       message: Message) -> None:
        """§4.7: live traffic for a recovering process is discarded (the
        recorder replays it); after the marker passes, it is held and
        appended once replay completes, preserving arrival order."""
        pid = pcb.pid
        if message.recovery_marker:
            marker_epoch = message.body[1] if (
                isinstance(message.body, tuple) and len(message.body) > 1) else 0
            if marker_epoch != pcb.recovery_epoch:
                self.trace.emit("recovery", str(pid), event="stale_marker")
                return
            self._marker_seen[pid] = True
            self.trace.emit("recovery", str(pid), event="marker_seen")
            return
        if self._marker_seen.get(pid):
            self._held_live.setdefault(pid, []).append(message)
        else:
            self.trace.emit("recovery", str(pid), event="discarded_live",
                            msg=str(message.msg_id))

    def _enqueue(self, pcb: ProcessControlRecord, message: Message) -> None:
        pcb.queue.append(message)
        self._pump(pcb)

    def _pump(self, pcb: ProcessControlRecord) -> None:
        """Deliver the next acceptable message to the program, if any."""
        if pcb.busy or not pcb.alive():
            return
        ready, channels = pcb.program.wants()
        if not ready:
            return
        message, was_head = pcb.queue.take_next(channels)
        if message is None:
            return
        if not was_head and self.config.publishing and pcb.recoverable:
            # §4.4.2: channels read this message out of arrival order;
            # tell the recorder which message was read and which was at
            # the head of the queue.
            head = pcb.queue.head()
            self.send_control_to_recorder(Control("read_order", {
                "pid": pcb.pid,
                "read": message.msg_id,
                "head": head.msg_id if head is not None else None,
            }))
        pcb.busy = True
        cost = self.config.costs.recv_cpu_ms
        self.cpu.run(cost, self._invoke_handler, pcb, message)

    def _invoke_handler(self, pcb: ProcessControlRecord, message: Message) -> None:
        if not pcb.alive():
            return
        passed_link_id: Optional[int] = None
        if message.passed_link is not None:
            passed_link_id = pcb.links.insert(message.passed_link)
        delivered = DeliveredMessage(code=message.code, channel=message.channel,
                                     body=message.body, src=message.src,
                                     passed_link_id=passed_link_id)
        pcb.consumed += 1
        pcb.msgs_since_checkpoint += 1
        pcb.replay_bytes_since_checkpoint += message.size_bytes
        user_cost = pcb.program.handler_cpu_ms
        pcb.exec_ms_since_checkpoint += user_cost
        ctx = ProcessContext(self, pcb)
        self._messages_delivered.inc()
        self.cpu.charge(user_cost, user=True)
        try:
            pcb.program.deliver(ctx, delivered)
        finally:
            pcb.busy = False
        if self.after_delivery is not None and pcb.alive():
            self.after_delivery(pcb)
        if pcb.alive():
            self.engine.call_soon(self._pump, pcb)

    # ------------------------------------------------------------------
    # privileged operations (kernel process only)
    # ------------------------------------------------------------------
    def forge_link(self, pcb: ProcessControlRecord, link: Link) -> int:
        """Insert an arbitrary link into a process's table.

        Only the kernel process uses this — it manufactures the
        DELIVERTOKERNEL control links returned from process creation and
        the initial links of new processes. User programs cannot forge
        links; they only create links to themselves (§4.2.2.1).
        """
        return pcb.links.insert(link)

    def send_as(self, pcb: ProcessControlRecord, dst: ProcessId, body: Any,
                channel: int = 0, code: int = 0,
                passed_link: Optional[Link] = None,
                deliver_to_kernel: bool = False,
                size_bytes: int = 128) -> None:
        """Send a message attributed to ``pcb`` without using a link.

        "While performing process control operations ... any messages it
        sends are attributed to the controlled process" (§4.4.3). Using
        the controlled process's send sequence keeps the suppression
        rule correct if that process is ever recovered mid-exchange.
        """
        pcb.send_seq += 1
        message = Message(
            msg_id=MessageId(pcb.pid, pcb.send_seq),
            src=pcb.pid, dst=dst, channel=channel, code=code, body=body,
            passed_link=passed_link, size_bytes=size_bytes,
            deliver_to_kernel=deliver_to_kernel,
        )
        self.send_message(message, from_pcb=pcb)

    def stop_process(self, pid: ProcessId) -> bool:
        """Stop a process; its queue keeps accumulating messages."""
        pcb = self.processes.get(pid)
        if pcb is None or pcb.state is not ProcessState.RUNNING:
            return False
        pcb.state = ProcessState.STOPPED
        return True

    def resume_process(self, pid: ProcessId) -> bool:
        """Resume a stopped process and drain its queue."""
        pcb = self.processes.get(pid)
        if pcb is None or pcb.state is not ProcessState.STOPPED:
            return False
        pcb.state = ProcessState.RUNNING
        self._pump(pcb)
        return True

    # ------------------------------------------------------------------
    # checkpoints (§3.3.1)
    # ------------------------------------------------------------------
    def checkpoint_process(self, pid: ProcessId) -> bool:
        """Snapshot a process and publish the checkpoint to the recorder.

        Returns False when the program style cannot be snapshotted (the
        recorder then retains the full message history instead).
        """
        pcb = self.processes.get(pid)
        if pcb is None or pcb.state is not ProcessState.RUNNING:
            return False
        program_state = pcb.program.snapshot()
        if program_state is None:
            return False
        checkpoint = {
            "program_state": program_state,
            "links": pcb.links.snapshot(),
            "send_seq": pcb.send_seq,
            "consumed": pcb.consumed,
            "dtk_processed": pcb.dtk_processed,
            "channels": getattr(pcb.program, "_channels", None),
        }
        pages = pcb.state_pages
        self.cpu.charge(self.config.costs.checkpoint_cpu_per_page_ms * pages)
        size = pages * self.config.costs.page_bytes
        self.send_control_to_recorder(
            Control("checkpoint", {
                "pid": pid, "data": checkpoint, "consumed": pcb.consumed,
                "dtk_processed": pcb.dtk_processed,
                "send_seq": pcb.send_seq, "pages": pages,
            }),
            size_bytes=min(size, 1024))
        pcb.exec_ms_since_checkpoint = 0.0
        pcb.replay_bytes_since_checkpoint = 0
        pcb.msgs_since_checkpoint = 0
        pcb.last_checkpoint_time = self.engine.now
        self.trace.emit("checkpoint", str(pid), pages=pages)
        return True

    # ------------------------------------------------------------------
    # crash injection and recovery support (§4.6, §4.7)
    # ------------------------------------------------------------------
    def crash_process(self, pid: ProcessId, report: bool = True) -> None:
        """Halt one process on a detected fault and report the crash."""
        pcb = self.processes.get(pid)
        if pcb is None or not pcb.alive():
            return
        pcb.state = ProcessState.CRASHED
        pcb.queue.clear()
        self.trace.emit("crash", str(pid), scope="process")
        if report:
            self.send_control_to_recorder(Control("process_crashed", {
                "pid": pid, "node": self.node_id, "error": "fault",
            }))

    def crash_node(self) -> None:
        """The whole processor fails: every process and all volatile
        kernel state is lost (§1.1.2 "rounding up")."""
        self.up = False
        self.processes.clear()
        self._next_local_id = 1
        self._marker_seen.clear()
        self._held_live.clear()
        self.transport.crash()
        self.cpu.reset()
        self.trace.emit("crash", f"node{self.node_id}", scope="node")

    def restart_node(self) -> None:
        """The processor reboots with an empty kernel; the recovery
        manager will repopulate it."""
        self.up = True
        self.transport.restart()
        self.trace.emit("restart", f"node{self.node_id}")

    def recreate_process(self, pid: ProcessId, image: str, args: Tuple,
                         initial_links: Tuple[Link, ...],
                         checkpoint: Optional[Dict[str, Any]],
                         suppress_send_through: int,
                         recoverable: bool = True,
                         state_pages: int = 4,
                         recovery_epoch: int = 0) -> None:
        """§4.7's recreate request: (re)build the process in the
        recovering state. If it already exists, it is destroyed first."""
        existing = self.processes.get(pid)
        if existing is not None:
            self.destroy_process(pid, notify_recorder=False)
        program = self.registry.instantiate(image, args)
        if hasattr(program, "attach_kernel"):
            program.attach_kernel(self)
        pcb = ProcessControlRecord(pid=pid, image=image, args=args,
                                   program=program, recoverable=recoverable,
                                   state_pages=state_pages)
        pcb.state = ProcessState.RECOVERING
        pcb.suppress_send_through = suppress_send_through
        pcb.recovery_epoch = recovery_epoch
        pcb.last_checkpoint_time = self.engine.now
        for link in initial_links:
            pcb.links.insert(link)
        self.processes[pid] = pcb
        self._marker_seen[pid] = False
        self._held_live[pid] = []
        ctx = ProcessContext(self, pcb)
        if checkpoint is not None:
            pcb.program.restore(checkpoint["program_state"])
            if hasattr(pcb.program, "attach_kernel"):
                pcb.program.attach_kernel(self)   # restore clears the ref
            pcb.links.restore(checkpoint["links"])
            pcb.send_seq = checkpoint["send_seq"]
            pcb.consumed = checkpoint["consumed"]
            pcb.dtk_processed = checkpoint.get("dtk_processed", 0)
            if checkpoint.get("channels") is not None:
                pcb.program._channels = checkpoint["channels"]
            reload_ms = (self.config.costs.checkpoint_cpu_per_page_ms
                         * state_pages)
            self.cpu.charge(reload_ms)
        else:
            # Restart from the initial image (binary) and let replay do
            # the rest — the thesis's initial implementation.
            self.cpu.run(self.config.costs.create_process_cpu_ms,
                         self._start_program, pcb, ctx)
        self.trace.emit("recovery", str(pid), event="recreated",
                        from_checkpoint=checkpoint is not None)

    def inject_replay(self, message: Message, recovery_epoch: int = 0) -> None:
        """The recovery process's special call: feed one published
        message to a recovering process, bypassing links (§4.7).

        Replay traffic from a superseded recovery process (§3.5) carries
        a stale epoch and is dropped — without this, controls already in
        flight when a recursive crash restarted recovery would leak into
        the new incarnation's stream.
        """
        pcb = self.processes.get(message.dst)
        if pcb is None or pcb.state is not ProcessState.RECOVERING:
            return
        if recovery_epoch != pcb.recovery_epoch:
            self.trace.emit("recovery", str(message.dst),
                            event="stale_replay_dropped")
            return
        if message.deliver_to_kernel:
            # Replayed process-control traffic executes at the kernel
            # level, "just like all other messages" in stream order.
            self._execute_dtk(message)
            return
        self._enqueue(pcb, message)

    def finish_recovery(self, pid: ProcessId, recovery_epoch: int = 0) -> None:
        """Replay complete: append held live traffic and go live."""
        pcb = self.processes.get(pid)
        if pcb is None or pcb.state is not ProcessState.RECOVERING:
            return
        if recovery_epoch != pcb.recovery_epoch:
            return
        pcb.state = ProcessState.RUNNING
        for message in self._held_live.pop(pid, []):
            if message.deliver_to_kernel:
                self._execute_dtk(message)
            else:
                pcb.queue.append(message)
        self._marker_seen.pop(pid, None)
        self.trace.emit("recovery", str(pid), event="live")
        self._pump(pcb)

    # ------------------------------------------------------------------
    def process_states(self) -> Dict[ProcessId, str]:
        """pid → state name, for the recorder's restart queries (§3.3.4)."""
        return {pid: pcb.state.value for pid, pcb in self.processes.items()
                if pcb.state is not ProcessState.DEAD}
