"""System processes: named-link server, process manager, memory scheduler.

"System processes are user level processes that are an integral part of
the operating system. While the kernel provides primitive functionality,
the system processes provide structure and policy" (§4.2.1).

The process-control chain is the three-process pipeline of §4.2.3: user
requests go to the **process manager** (jobs and limits), which forwards
to the **memory scheduler** (node placement — it "maintains a link to
the kernel process of each node"), which forwards to the target node's
kernel process. Replies carry the new process's DELIVERTOKERNEL control
link back up the chain.

The **named-link server** solves the rendezvous problem (§4.2.2.1):
every process is created holding a link to it (initial link id 1), and
can register links under names or look names up; lookups for names not
yet registered are parked and answered on registration.

All three are checkpointable actor programs — their state is ints,
strings, and tuples; held links live in their kernel link tables, which
checkpoints capture separately.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.demos.messages import DeliveredMessage
from repro.demos.process import Program

#: Registry names for the three system process images.
NLS_IMAGE = "demos/named_link_server"
PM_IMAGE = "demos/process_manager"
MS_IMAGE = "demos/memory_scheduler"

#: Well-known registered names.
PM_NAME = "process_manager"

#: Channel conventions: requests arrive on channel 0; internal replies
#: travel on channel 1 links whose code is the request id.
REQUEST_CHANNEL = 0
REPLY_CHANNEL = 1


class NamedLinkServer(Program):
    """The rendezvous service (§4.2.2.1).

    Protocol (bodies are tuples):

    * ``('register', name)`` + passed link — file the link under ``name``;
    * ``('lookup', name)`` + passed reply link — answer
      ``('link', name)`` + a duplicate of the registered link, parking
      the request if the name is not registered yet.
    """

    handler_cpu_ms = 0.5

    def __init__(self) -> None:
        super().__init__()
        self.names: Dict[str, int] = {}              # name -> held link id
        self.pending: Dict[str, List[int]] = {}      # name -> reply link ids

    def on_message(self, ctx, message: DeliveredMessage) -> None:
        body = message.body
        if not isinstance(body, tuple) or not body:
            return
        if body[0] == "register" and message.passed_link_id is not None:
            name = body[1]
            self.names[name] = message.passed_link_id
            for reply_id in self.pending.pop(name, []):
                self._answer(ctx, name, reply_id)
        elif body[0] == "lookup" and message.passed_link_id is not None:
            name = body[1]
            if name in self.names:
                self._answer(ctx, name, message.passed_link_id)
            else:
                self.pending.setdefault(name, []).append(message.passed_link_id)

    def _answer(self, ctx, name: str, reply_link_id: int) -> None:
        ctx.send(reply_link_id, ("link", name),
                 pass_link_id=self.names[name], keep_link=True)
        ctx.destroy_link(reply_link_id)


class ProcessManager(Program):
    """Job accounting and the user-facing end of process control (§4.2.3).

    "The process manager maintains all information about process groups,
    called jobs. ... A job has associated with it certain limits to
    control the amount of resources used by a user." Here a job is keyed
    by the requesting pid and limited to ``job_limit`` live processes.

    Protocol: ``('create', image, args, node_hint, recoverable, pages)``
    + passed reply link → eventually ``('created', pid)`` + passed
    control link, or ``('create_failed', reason)``.
    ``('job_done', pid_tuple)`` decrements the requester's job count.
    """

    handler_cpu_ms = 0.5

    def __init__(self, job_limit: int = 64):
        super().__init__()
        self.job_limit = job_limit
        self.jobs: Dict[Tuple, int] = {}             # requester pid -> count
        self.pending: Dict[int, Tuple[int, Tuple]] = {}  # req -> (reply link, requester)
        self.next_req = 1
        self.ms_link_id: Optional[int] = None        # initial link, set in setup

    def setup(self, ctx) -> None:
        # Initial links: 1 = named-link server, 2 = memory scheduler.
        self.ms_link_id = 2
        registration = ctx.create_link(channel=REQUEST_CHANNEL)
        ctx.send(1, ("register", PM_NAME), pass_link_id=registration)

    def on_message(self, ctx, message: DeliveredMessage) -> None:
        if message.channel == REQUEST_CHANNEL:
            self._handle_request(ctx, message)
        elif message.channel == REPLY_CHANNEL:
            self._handle_reply(ctx, message)

    def _handle_request(self, ctx, message: DeliveredMessage) -> None:
        body = message.body
        if not isinstance(body, tuple) or not body:
            return
        if body[0] == "job_done":
            requester = tuple(body[1])
            if requester in self.jobs and self.jobs[requester] > 0:
                self.jobs[requester] -= 1
            return
        if body[0] != "create" or message.passed_link_id is None:
            return
        _, image, args, node_hint, recoverable, pages = body
        requester = tuple(message.src)
        if self.jobs.get(requester, 0) >= self.job_limit:
            ctx.send(message.passed_link_id, ("create_failed", "job limit"))
            ctx.destroy_link(message.passed_link_id)
            return
        self.jobs[requester] = self.jobs.get(requester, 0) + 1
        req = self.next_req
        self.next_req += 1
        self.pending[req] = (message.passed_link_id, requester)
        reply_to_me = ctx.create_link(channel=REPLY_CHANNEL, code=req)
        node = node_hint if node_hint is not None else message.src.node
        ctx.send(self.ms_link_id,
                 ("create", image, args, node, recoverable, pages),
                 pass_link_id=reply_to_me)

    def _handle_reply(self, ctx, message: DeliveredMessage) -> None:
        req = message.code
        entry = self.pending.pop(req, None)
        if entry is None:
            return
        reply_link_id, requester = entry
        body = message.body
        if (isinstance(body, tuple) and body and body[0] == "created"
                and message.passed_link_id is not None):
            ctx.send(reply_link_id, body, pass_link_id=message.passed_link_id)
        else:
            self.jobs[requester] = max(0, self.jobs.get(requester, 1) - 1)
            ctx.send(reply_link_id, ("create_failed", "scheduler error"))
        ctx.destroy_link(reply_link_id)


class MemoryScheduler(Program):
    """Node placement, the middle of the control chain (§4.2.3, §4.3.2).

    ``node_order`` (creation argument) lists the node ids whose kernel
    processes this scheduler holds links to; initial links are
    ``1 = NLS`` then one kernel-process link per node in that order.
    """

    handler_cpu_ms = 0.5

    def __init__(self, node_order: Tuple[int, ...] = ()):
        super().__init__()
        self.node_order = tuple(node_order)
        self.pending: Dict[int, int] = {}   # req -> PM reply link id
        self.next_req = 1

    def _kp_link_id(self, node: int) -> Optional[int]:
        try:
            return 2 + self.node_order.index(node)
        except ValueError:
            return None

    def on_message(self, ctx, message: DeliveredMessage) -> None:
        if message.channel == REQUEST_CHANNEL:
            self._handle_request(ctx, message)
        elif message.channel == REPLY_CHANNEL:
            self._handle_reply(ctx, message)

    def _handle_request(self, ctx, message: DeliveredMessage) -> None:
        body = message.body
        if (not isinstance(body, tuple) or not body or body[0] != "create"
                or message.passed_link_id is None):
            return
        _, image, args, node, recoverable, pages = body
        kp_link = self._kp_link_id(node)
        if kp_link is None and self.node_order:
            # Unknown target: fall back to the first managed node.
            node = self.node_order[0]
            kp_link = self._kp_link_id(node)
        if kp_link is None:
            ctx.send(message.passed_link_id, ("create_failed", "no such node"))
            ctx.destroy_link(message.passed_link_id)
            return
        req = self.next_req
        self.next_req += 1
        self.pending[req] = message.passed_link_id
        reply_to_me = ctx.create_link(channel=REPLY_CHANNEL, code=req)
        ctx.send(kp_link, ("create", image, args, recoverable, pages),
                 pass_link_id=reply_to_me)

    def _handle_reply(self, ctx, message: DeliveredMessage) -> None:
        req = message.code
        reply_link_id = self.pending.pop(req, None)
        if reply_link_id is None:
            return
        body = message.body
        if message.passed_link_id is not None:
            ctx.send(reply_link_id, body, pass_link_id=message.passed_link_id)
        else:
            ctx.send(reply_link_id, body)
        ctx.destroy_link(reply_link_id)
