"""Links: the DEMOS capability objects (§4.2.2.1).

"A link is much like a capability. It allows access and is immutable
and unforgable. A DEMOS process must have a link to another process in
order to send it messages. Links exist outside of the address space of
the processes, either in messages or in kernel resident link tables. A
link can only be accessed in certain kernel calls ... The process
always refers to a link via a link id, which is the link's index into
the link table."

``deliver_to_kernel`` marks the special DELIVERTOKERNEL links of §4.4.3:
a message sent over one is handed not to the process it points at but to
the kernel process on that process's node, which performs the control
operation while "assuming the identity" of the controlled process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Tuple

from repro.demos.ids import ProcessId
from repro.errors import LinkError


@dataclass(frozen=True)
class Link:
    """An immutable capability to send messages to ``dst``.

    ``channel`` and ``code`` are stamped into the header of every message
    sent over the link (§4.2.2.1-2); the receiver chose them when it
    created the link, so it can classify arriving traffic.
    """

    dst: ProcessId
    channel: int = 0
    code: int = 0
    deliver_to_kernel: bool = False

    def with_code(self, code: int) -> "Link":
        """A copy of this link carrying a different code.

        Used by servers handing out per-resource links (e.g. the file
        system returns a link "whose code identifies the file").
        """
        return replace(self, code=code)


class LinkTable:
    """The kernel-resident link table of one process.

    Link ids are small integers handed to the process; the table maps
    them to :class:`Link` values. Moving a link (into a message, or via
    MOVELINK) removes it from the table — a link exists in exactly one
    place at a time.
    """

    def __init__(self) -> None:
        self._links: Dict[int, Link] = {}
        self._next_id = 1

    def insert(self, link: Link) -> int:
        """Add a link, returning its new link id."""
        link_id = self._next_id
        self._next_id += 1
        self._links[link_id] = link
        return link_id

    def get(self, link_id: int) -> Link:
        """The link for ``link_id``; raises :class:`LinkError` if absent."""
        try:
            return self._links[link_id]
        except KeyError:
            raise LinkError(f"no link with id {link_id}") from None

    def has(self, link_id: int) -> bool:
        """True if ``link_id`` names a live link."""
        return link_id in self._links

    def remove(self, link_id: int) -> Link:
        """Remove and return the link (it is being moved elsewhere)."""
        try:
            return self._links.pop(link_id)
        except KeyError:
            raise LinkError(f"no link with id {link_id}") from None

    def snapshot(self) -> Tuple[Dict[int, Link], int]:
        """A copy of the table contents and id counter, for checkpoints.

        The counter must be part of the snapshot: a recovered process has
        to assign the *same* link ids it assigned the first time, or its
        behaviour would diverge from the pre-crash execution.
        """
        return dict(self._links), self._next_id

    def restore(self, snapshot: Tuple[Dict[int, Link], int]) -> None:
        """Replace the table contents from a checkpoint snapshot."""
        contents, next_id = snapshot
        self._links = dict(contents)
        self._next_id = next_id

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[Tuple[int, Link]]:
        return iter(self._links.items())
