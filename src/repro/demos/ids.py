"""Network-wide process and message identifiers.

"Associated with each process, in single processor DEMOS, is a unique
identifier. In DEMOS/MP, this identifier is made unique, network wide,
by appending to the single processor ID the unique ID of the processor
on which it was created" (§4.3.1).

"The identifier is made up of two fields: the unique identifier of the
sending process and a number from that process's state block. This
number is increased every time a message is sent by that process"
(§4.3.3) — the message id used for duplicate suppression and for the
recorder's bookkeeping.
"""

from __future__ import annotations

from typing import NamedTuple

#: Local id reserved for the kernel process on every node (§4.2.1).
KERNEL_LOCAL_ID = 0


class ProcessId(NamedTuple):
    """A network-wide process name: (creating node, local id)."""

    node: int
    local: int

    def is_kernel_process(self) -> bool:
        """True for the per-node kernel process pseudo-pid."""
        return self.local == KERNEL_LOCAL_ID

    def __str__(self) -> str:
        return f"{self.node}.{self.local}"


class MessageId(NamedTuple):
    """A network-unique message identifier: (sender pid, send sequence)."""

    sender: ProcessId
    seq: int

    def __str__(self) -> str:
        return f"{self.sender}#{self.seq}"


def kernel_pid(node: int) -> ProcessId:
    """The pid of the kernel process resident on ``node``."""
    return ProcessId(node, KERNEL_LOCAL_ID)
