"""A processing node: message kernel + kernel process + control plumbing.

The node registers the kernel-level control handlers for the protocols
that operate *below* the process level:

* the watchdog's "are you alive" request (§4.6) — answered immediately
  while the node is up;
* the recorder's restart-time state query (§3.3.4) — answered with the
  state of every local process and the echoed restart number (§3.4);
* the recovery protocol (§4.7) — recreate requests, replay injection,
  and the recovery-completion hand-back.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.demos.ids import MessageId, ProcessId, kernel_pid
from repro.demos.kernel import KernelConfig, MessageKernel
from repro.demos.kernel_process import KERNEL_PROCESS_IMAGE
from repro.demos.messages import Control
from repro.demos.process import ProgramRegistry
from repro.net.media import Medium
from repro.obs import Observability
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog


class Node:
    """One DEMOS/MP processing node."""

    def __init__(self, engine: Engine, node_id: int, medium: Medium,
                 config: KernelConfig, registry: ProgramRegistry,
                 trace: Optional[TraceLog] = None,
                 obs: Optional[Observability] = None,
                 rng=None):
        self.engine = engine
        self.node_id = node_id
        self.kernel = MessageKernel(engine, node_id, medium, config,
                                    registry, trace, obs=obs, rng=rng)
        self.booted = False
        #: bounded ring of recently published messages — attached by
        #: the gossip coordinator (publishing.gossip), None otherwise
        self.gossip_buffer = None
        self._register_handlers()

    # ------------------------------------------------------------------
    def boot(self, boot_specs: Tuple = (), nls_pid: Optional[Tuple] = None) -> None:
        """Start the kernel process, which starts the system processes."""
        self.kernel.create_process(
            image=KERNEL_PROCESS_IMAGE,
            args=(boot_specs, nls_pid),
            pid=kernel_pid(self.node_id),
            recoverable=True,
            state_pages=2,
        )
        self.booted = True

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Processor failure: all processes and volatile state are lost."""
        if self.gossip_buffer is not None:
            self.gossip_buffer.clear()      # the buffer is volatile too
        self.kernel.crash_node()

    def restart(self) -> None:
        """Reboot empty; the recovery manager repopulates the node."""
        self.kernel.restart_node()

    @property
    def up(self) -> bool:
        return self.kernel.up

    # ------------------------------------------------------------------
    def _register_handlers(self) -> None:
        handlers = self.kernel.control_handlers
        handlers["are_you_alive"] = self._on_are_you_alive
        handlers["state_query"] = self._on_state_query
        handlers["recreate"] = self._on_recreate
        handlers["replay"] = self._on_replay
        handlers["recovery_done"] = self._on_recovery_done
        handlers["gossip_pull"] = self._on_gossip_pull

    def _on_are_you_alive(self, control: Control, src_node: int) -> None:
        self.kernel.send_control(src_node, Control("alive_reply", {
            "node": self.node_id, "nonce": control.get("nonce"),
        }), guaranteed=False)

    def _on_state_query(self, control: Control, src_node: int) -> None:
        # §3.4: echo the restart number so the recorder can discard
        # replies that belong to an earlier restart attempt.
        self.kernel.send_control(src_node, Control("state_reply", {
            "node": self.node_id,
            "restart_number": control.get("restart_number"),
            "states": {tuple(pid): state
                       for pid, state in self.kernel.process_states().items()},
        }))

    def _on_recreate(self, control: Control, src_node: int) -> None:
        self.kernel.recreate_process(
            pid=ProcessId(*control["pid"]),
            image=control["image"],
            args=tuple(control["args"]),
            initial_links=tuple(control.get("initial_links", ())),
            checkpoint=control.get("checkpoint"),
            suppress_send_through=control["suppress_send_through"],
            recoverable=control.get("recoverable", True),
            state_pages=control.get("state_pages", 4),
            recovery_epoch=control.get("epoch", 0),
        )
        self.kernel.send_control(src_node, Control("recreate_ok", {
            "pid": control["pid"], "node": self.node_id,
        }))

    def _on_replay(self, control: Control, src_node: int) -> None:
        self.kernel.inject_replay(control["message"], control.get("epoch", 0))

    def _on_recovery_done(self, control: Control, src_node: int) -> None:
        self.kernel.finish_recovery(ProcessId(*control["pid"]),
                                    control.get("epoch", 0))

    def _on_gossip_pull(self, control: Control, src_node: int) -> None:
        """Epidemic pull backup: supply any requested message this
        node's bounded buffer still holds. Supplies are unguaranteed —
        the recorder's next round retries whatever is still missing.
        Requests arrive as per-sender ``[lo, hi)`` sequence ranges
        (``gossip.pull_ranges``); the explicit-id ``wanted`` list is
        kept for compatibility with pre-range pull senders."""
        buffer = self.gossip_buffer
        if buffer is None:
            return
        ranges = control.get("ranges")
        if ranges is not None:
            wanted = ((sender, seq) for sender, lo, hi in ranges
                      for seq in range(lo, hi))
        else:
            wanted = control["wanted"]
        for sender, seq in wanted:
            msg_id = MessageId(ProcessId(*sender), seq)
            message = buffer.get(msg_id)
            if message is not None:
                self.kernel.send_control(
                    src_node, Control("gossip_supply", {"message": message}),
                    guaranteed=False, size_bytes=message.size_bytes + 32)
