"""The kernel process (§4.2.1, §4.2.3, §4.4.3).

"The kernel process also resides in the kernel space. ... User level
processes make requests of the kernel process by sending it messages."
It is the only entity that creates and destroys processes, and — after
the §4.4.3 fix — the interpreter of all DELIVERTOKERNEL process-control
traffic, which it executes "while it temporarily assumes the identity of
the controlled process".

The kernel process is itself a DEMOS process (pid ``(node, 0)``) with a
message queue, links, and a checkpointable actor state, so it is
recovered by the same machinery as everything else. Its essential
recovery property: re-executing a replayed create request when the
process already exists (because the recovery manager restored it first)
is a no-op apart from regenerating the reply, which the send-suppression
rule then drops if it was already delivered.

Message protocol (bodies are plain tuples):

* to the kernel process directly —
  ``('create', image, args, recoverable, pages)`` + passed reply link
  → reply ``('created', pid)`` + passed DELIVERTOKERNEL control link;
* over a DELIVERTOKERNEL link to process X —
  ``('destroy',)``, ``('stop',)``, ``('resume',)``,
  ``('movelink', link_id, holder_pid)`` (the Figure 4.5 exchange),
  ``('fetch_link', link_id, for_pid)``, ``('install_link',)`` + passed
  link, and ``('givelink',)`` + passed link (the one-message variant
  usable when the requester itself holds the link).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.demos.ids import ProcessId, kernel_pid
from repro.demos.links import Link
from repro.demos.messages import DeliveredMessage, Message
from repro.demos.process import Program
from repro.errors import LinkError

#: Registry name of the kernel process image.
KERNEL_PROCESS_IMAGE = "demos/kernel_process"


class KernelProcessProgram(Program):
    """The per-node kernel process.

    ``boot_specs`` describes the system processes this node starts when
    the operating system comes up (§4.2.1): a tuple of
    ``(image, args, links_spec, recoverable, pages)`` entries, where
    ``links_spec`` items are interpreted as:

    * ``('nls',)`` — a link to this node's configured named-link server;
    * ``('proc', i)`` — a link to the i-th boot process of this node;
    * ``('kp', node)`` — a link to the kernel process of ``node``;
    * ``('kp_dtk', node)`` — ditto, but DELIVERTOKERNEL.

    ``nls_pid`` names the system-wide named-link server; a link to it is
    inserted as initial link id 1 of every process this kernel process
    creates, solving the rendezvous problem.
    """

    handler_cpu_ms = 0.5

    def __init__(self, boot_specs: Tuple = (), nls_pid: Optional[Tuple] = None):
        super().__init__()
        self.boot_specs = boot_specs
        self.nls_pid = tuple(nls_pid) if nls_pid is not None else None
        self.next_local_id = 1

    # -- kernel residence --------------------------------------------------
    def attach_kernel(self, kernel) -> None:
        """Bind to the node's message kernel (re-run after restore)."""
        self._ctx_kernel = kernel
        kernel.dtk_handler = self.handle_dtk

    # -- startup -----------------------------------------------------------
    def setup(self, ctx) -> None:
        node = ctx.node
        for image, args, links_spec, recoverable, pages in self.boot_specs:
            initial = tuple(self._resolve_link_spec(spec, node)
                            for spec in links_spec)
            pid = self._allocate(node)
            kernel = self._kernel()
            existing = kernel.processes.get(pid)
            if existing is not None and existing.alive():
                # Replayed boot during recovery: the recovery manager has
                # already restored this process — leave it alone.
                continue
            kernel.create_process(
                image=image, args=args, pid=pid,
                initial_links=self._with_nls(initial),
                recoverable=recoverable, state_pages=pages)

    def _kernel(self):
        return self._ctx_kernel

    def _allocate(self, node: int) -> ProcessId:
        pid = ProcessId(node, self.next_local_id)
        self.next_local_id += 1
        return pid

    def _resolve_link_spec(self, spec: Tuple, node: int) -> Link:
        kind = spec[0]
        if kind == "nls":
            if self.nls_pid is None:
                raise LinkError("boot spec references an unconfigured NLS")
            return Link(dst=ProcessId(*self.nls_pid))
        if kind == "proc":
            return Link(dst=ProcessId(node, 1 + spec[1]))
        if kind == "kp":
            return Link(dst=kernel_pid(spec[1]))
        if kind == "kp_dtk":
            return Link(dst=kernel_pid(spec[1]), deliver_to_kernel=True)
        raise LinkError(f"unknown boot link spec {spec!r}")

    def _with_nls(self, links: Tuple[Link, ...]) -> Tuple[Link, ...]:
        """Prepend the named-link server link (initial link id 1)."""
        if self.nls_pid is None:
            return links
        return (Link(dst=ProcessId(*self.nls_pid)),) + tuple(links)

    # -- direct requests -----------------------------------------------------
    def on_message(self, ctx, message: DeliveredMessage) -> None:
        body = message.body
        if not isinstance(body, tuple) or not body:
            return
        if body[0] == "create":
            self._handle_create(ctx, message, body)

    def _handle_create(self, ctx, message: DeliveredMessage, body: tuple) -> None:
        _, image, args, recoverable, pages = body
        kernel = self._kernel()
        pid = self._allocate(ctx.node)
        existing = kernel.processes.get(pid)
        if existing is None or not existing.alive():
            # During kernel-process recovery the process may already be
            # alive (restored by the recovery manager before this request
            # was replayed); creating it again would destroy that work.
            kernel.create_process(image=image, args=tuple(args), pid=pid,
                                  initial_links=self._with_nls(()),
                                  recoverable=recoverable, state_pages=pages)
        if message.passed_link_id is not None:
            control = Link(dst=pid, deliver_to_kernel=True)
            own_pcb = kernel.processes[ctx.pid]
            control_id = kernel.forge_link(own_pcb, control)
            ctx.send(message.passed_link_id, ("created", pid),
                     pass_link_id=control_id)
            ctx.destroy_link(message.passed_link_id)

    # -- DELIVERTOKERNEL control (§4.4.3) -----------------------------------
    def handle_dtk(self, message: Message) -> None:
        """Execute a process-control message addressed to ``message.dst``
        while assuming that process's identity."""
        kernel = self._kernel()
        controlled = kernel.processes.get(message.dst)
        body = message.body
        if not isinstance(body, tuple) or not body:
            return
        op = body[0]
        if op == "destroy":
            kernel.destroy_process(message.dst)
        elif op == "stop":
            kernel.stop_process(message.dst)
        elif op == "resume":
            kernel.resume_process(message.dst)
        elif op == "movelink" and controlled is not None:
            # Figure 4.5, step 2: running as the controlled process, ask
            # the holder's kernel process for the link.
            _, link_id, holder = body
            kernel.send_as(controlled, ProcessId(*holder),
                           ("fetch_link", link_id, tuple(message.dst)),
                           deliver_to_kernel=True)
        elif op == "fetch_link" and controlled is not None:
            # Figure 4.5, step 3: running as the holder, move the link
            # out of its table and ship it to the requesting process.
            _, link_id, for_pid = body
            if controlled.links.has(link_id):
                link = controlled.links.remove(link_id)
                kernel.send_as(controlled, ProcessId(*for_pid),
                               ("install_link",), passed_link=link,
                               deliver_to_kernel=True)
        elif op in ("install_link", "givelink") and controlled is not None:
            # Figure 4.5, step 4 (or the one-message variant): store the
            # carried link in the controlled process's link table.
            if message.passed_link is not None:
                kernel.forge_link(controlled, message.passed_link)
