"""Process model: program styles, the process context, and registry.

The recovery model requires processes to be "deterministic upon their
input interactions" (§1.1.1): a process may interact with the world only
through kernel calls, and given the same sequence of delivered messages
it must make the same sequence of calls. Two program styles satisfy
this:

* :class:`Program` — an actor with explicit state held on ``self``. Its
  state is snapshottable, so it supports true checkpoints (§3.3.1).
* :class:`GeneratorProgram` — a coroutine (``run`` generator) that pulls
  messages with ``yield Recv(...)``. Python generators cannot be
  snapshotted, so these are recovered by replay from their initial image
  — exactly the subset the thesis's initial implementation supported
  ("recovery of processes from their initial state and the published
  messages", Chapter 4 intro).

Programs never see the recovery machinery: a recovering process runs the
same code against replayed inputs — transparency (§3.2.2).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.demos.ids import ProcessId
from repro.demos.links import Link, LinkTable
from repro.demos.messages import DeliveredMessage
from repro.demos.queue import MessageQueue
from repro.errors import ProcessError


class ProcessState(Enum):
    """Run states of a process control record."""

    RUNNING = "running"
    STOPPED = "stopped"        # stopped by process control
    CRASHED = "crashed"        # halted on a detected fault (§1.1.2)
    RECOVERING = "recovering"  # being replayed by a recovery process
    DEAD = "dead"              # destroyed


@dataclass(frozen=True)
class Recv:
    """What a generator program yields to receive its next message.

    ``channels`` is an iterable of acceptable channel numbers, or None
    for "any channel" (§4.2.2.2).
    """

    channels: Optional[Tuple[int, ...]] = None

    @staticmethod
    def on(*channels: int) -> "Recv":
        """Receive restricted to the given channels."""
        return Recv(channels=tuple(channels))


class ProgramBase:
    """The kernel's view of a program. Subclasses implement a style."""

    #: CPU milliseconds charged to the node per delivered message.
    handler_cpu_ms: float = 1.0

    def start(self, ctx: "ProcessContext") -> None:
        """Begin execution (process creation or recovery restart)."""
        raise NotImplementedError

    def deliver(self, ctx: "ProcessContext", message: DeliveredMessage) -> None:
        """Consume one message the kernel selected for this process."""
        raise NotImplementedError

    def wants(self) -> Tuple[bool, Optional[Tuple[int, ...]]]:
        """(is the program ready to receive, acceptable channels or None=any)."""
        raise NotImplementedError

    def snapshot(self) -> Optional[Any]:
        """Serializable program state, or None if not checkpointable."""
        return None

    def restore(self, state: Any) -> None:
        """Reinstate state captured by :meth:`snapshot`."""
        raise NotImplementedError(f"{type(self).__name__} is not checkpointable")


class Program(ProgramBase):
    """Actor-style program: explicit state on ``self``, push delivery.

    Subclasses override :meth:`setup` and :meth:`on_message`; any
    deep-copyable attributes they set on ``self`` become the checkpointed
    state. Channel selectivity is controlled with
    ``ctx.set_channels(...)``.
    """

    def __init__(self) -> None:
        self._channels: Optional[Tuple[int, ...]] = None

    # -- overridables ---------------------------------------------------
    def setup(self, ctx: "ProcessContext") -> None:
        """Called once at process start (not on recovery from checkpoint)."""

    def on_message(self, ctx: "ProcessContext", message: DeliveredMessage) -> None:
        """Called for each delivered message."""

    # -- kernel interface -----------------------------------------------
    def start(self, ctx: "ProcessContext") -> None:
        self.setup(ctx)

    def deliver(self, ctx: "ProcessContext", message: DeliveredMessage) -> None:
        self.on_message(ctx, message)

    def wants(self) -> Tuple[bool, Optional[Tuple[int, ...]]]:
        return True, self._channels

    def snapshot(self) -> Any:
        return copy.deepcopy(
            {k: v for k, v in self.__dict__.items() if not k.startswith("_ctx")})

    def restore(self, state: Any) -> None:
        self.__dict__.clear()
        self.__dict__.update(copy.deepcopy(state))


class GeneratorProgram(ProgramBase):
    """Coroutine-style program: ``run(ctx)`` is a generator pulling
    messages with ``yield Recv(...)``.

    Not checkpointable (``snapshot`` returns None); recovery restarts the
    generator from scratch and replays every published message.
    """

    def __init__(self, run: Optional[Callable] = None):
        self._run_fn = run
        self._gen = None
        self._waiting: Optional[Recv] = None
        self._done = False

    def run(self, ctx: "ProcessContext"):
        """Override in subclasses (or pass a function to __init__)."""
        if self._run_fn is None:
            raise NotImplementedError("override run() or pass a generator fn")
        return self._run_fn(ctx)

    def start(self, ctx: "ProcessContext") -> None:
        self._gen = self.run(ctx)
        self._advance(ctx, None)

    def deliver(self, ctx: "ProcessContext", message: DeliveredMessage) -> None:
        if self._waiting is None:
            raise ProcessError("generator program was not waiting for a message")
        self._waiting = None
        self._advance(ctx, message)

    def _advance(self, ctx: "ProcessContext", value: Any) -> None:
        try:
            yielded = self._gen.send(value)
        except StopIteration:
            self._done = True
            ctx.exit()
            return
        if not isinstance(yielded, Recv):
            raise ProcessError(
                f"generator program yielded {yielded!r}; expected Recv")
        self._waiting = yielded

    def wants(self) -> Tuple[bool, Optional[Tuple[int, ...]]]:
        if self._done or self._waiting is None:
            return False, None
        return True, self._waiting.channels

    def snapshot(self) -> Optional[Any]:
        return None


class ProgramRegistry:
    """Maps binary-image names to program factories (§3.3.1).

    "The first checkpoint for a process is the binary image from which
    the process is created" — the recorder stores the image name and
    creation arguments, and recovery re-instantiates the program from
    this registry.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., ProgramBase]] = {}

    def register(self, name: str, factory: Optional[Callable[..., ProgramBase]] = None):
        """Register a factory; usable directly or as a decorator."""
        if factory is not None:
            self._factories[name] = factory
            return factory

        def decorator(f: Callable[..., ProgramBase]):
            self._factories[name] = f
            return f
        return decorator

    def instantiate(self, name: str, args: Tuple = ()) -> ProgramBase:
        """Build a fresh program instance for image ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise ProcessError(f"no program image registered as {name!r}") from None
        return factory(*args)

    def known(self, name: str) -> bool:
        return name in self._factories

    def names(self) -> List[str]:
        return sorted(self._factories)


@dataclass
class ProcessControlRecord:
    """The kernel-resident state of one process (§4.4.3's inventory).

    Together with the program snapshot and the queue contents this is
    the "complete state of a process" that checkpoints capture.
    """

    pid: ProcessId
    image: str
    args: Tuple
    program: ProgramBase
    state: ProcessState = ProcessState.RUNNING
    links: LinkTable = field(default_factory=LinkTable)
    queue: MessageQueue = field(default_factory=MessageQueue)
    send_seq: int = 0                 # last message sequence sent
    consumed: int = 0                 # queue messages consumed since creation
    dtk_processed: int = 0            # control messages executed for us
    recoverable: bool = True          # §6.6.1: publish and recover this one?
    state_pages: int = 4              # nominal checkpoint size, in pages
    # -- recovery bookkeeping -------------------------------------------
    suppress_send_through: int = 0    # drop regenerated sends up to this seq
    recovery_epoch: int = 0           # which recovery incarnation this is:
    # stale replay traffic from a superseded recovery process (§3.5)
    # carries an older epoch and is discarded.
    # -- accounting for the §3.2.3 recovery-time model --------------------
    exec_ms_since_checkpoint: float = 0.0
    replay_bytes_since_checkpoint: int = 0
    msgs_since_checkpoint: int = 0
    last_checkpoint_time: float = 0.0
    # -- handler scheduling ------------------------------------------------
    busy: bool = False                # a handler is executing on the CPU

    def alive(self) -> bool:
        return self.state in (ProcessState.RUNNING, ProcessState.RECOVERING)
