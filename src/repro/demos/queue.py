"""Per-process message queues with channel-selective receive (§4.2.2.2).

"The DEMOS message kernel maintains a queue of input messages for each
process. ... Whenever a process performs a receive kernel call, it
specifies the channels from which it is willing to receive a message.
Instead of returning the next message in the queue, the message kernel
returns the next message in the queue which belongs to one of those
channels."

Publishing needs to know when channels cause messages to be read out of
arrival order (§4.4.2), so :meth:`take_next` also reports whether the
selected message was the queue head.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set, Tuple

from repro.demos.messages import Message


class MessageQueue:
    """FIFO of waiting messages with channel filtering."""

    def __init__(self) -> None:
        self._queue: Deque[Message] = deque()

    def append(self, message: Message) -> None:
        """Enqueue at the tail (arrival order)."""
        self._queue.append(message)

    def peek_matching(self, channels: Optional[Iterable[int]]) -> Optional[Message]:
        """The next message on one of ``channels`` (None = any), unread."""
        allowed = None if channels is None else set(channels)
        for msg in self._queue:
            if allowed is None or msg.channel in allowed:
                return msg
        return None

    def take_next(self, channels: Optional[Iterable[int]]) -> Tuple[Optional[Message], bool]:
        """Remove and return the next matching message.

        Returns ``(message, was_head)``; ``was_head`` is False when the
        channel filter skipped over earlier messages — the condition that
        obliges the kernel to advise the recorder of the read order.
        ``(None, True)`` means nothing matched.
        """
        allowed = None if channels is None else set(channels)
        for index, msg in enumerate(self._queue):
            if allowed is None or msg.channel in allowed:
                del self._queue[index]
                return msg, index == 0
        return None, True

    def head(self) -> Optional[Message]:
        """The arrival-order head, or None."""
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        """Drop everything (process destruction)."""
        self._queue.clear()

    def snapshot(self) -> List[Message]:
        """The queued messages in order (messages are immutable)."""
        return list(self._queue)

    def restore(self, messages: Iterable[Message]) -> None:
        """Replace contents from a snapshot."""
        self._queue = deque(messages)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
