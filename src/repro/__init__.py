"""repro — a reproduction of Presotto's *PUBLISHING: A Reliable
Broadcast Communication Mechanism* (UC Berkeley / SOSP 1983).

Public API highlights:

* :class:`repro.System` / :class:`repro.SystemConfig` — build a complete
  simulated publishing cluster (DEMOS/MP nodes + broadcast medium +
  recorder + recovery manager);
* :class:`repro.Program` / :class:`repro.GeneratorProgram` — the two
  deterministic program styles;
* :mod:`repro.publishing` — the recorder, checkpoint policies, the
  §3.2.3 recovery-time model, multi-recorder coordination;
* :mod:`repro.queueing` — the Chapter 5 queuing evaluation;
* :mod:`repro.txn` — transactions over published communications (§6.4);
* :mod:`repro.debugger` — the replay debugger (§6.5).
"""

from repro.demos import (
    Control,
    CostModel,
    DeliveredMessage,
    GeneratorProgram,
    Link,
    Message,
    MessageId,
    ProcessId,
    ProcessState,
    Program,
    ProgramRegistry,
    Recv,
    kernel_pid,
)
from repro.system import System, SystemConfig

__version__ = "1.0.0"

__all__ = [
    "Control",
    "CostModel",
    "DeliveredMessage",
    "GeneratorProgram",
    "Link",
    "Message",
    "MessageId",
    "ProcessId",
    "ProcessState",
    "Program",
    "ProgramRegistry",
    "Recv",
    "kernel_pid",
    "System",
    "SystemConfig",
    "__version__",
]
