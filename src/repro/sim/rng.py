"""Named, seeded random streams.

Determinism is load-bearing in this reproduction: process recovery works
because a re-executed process sees exactly the inputs it saw the first
time. To keep whole-simulation runs reproducible, every component draws
randomness from its own named stream derived from a master seed, so adding
a new consumer of randomness never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 64-bit seed derived from ``(master_seed, name)``.

    This is the seed-derivation primitive for the whole reproduction:
    :class:`RngStreams` uses it for its named streams, and
    :mod:`repro.parallel` uses it to give every shard of a sweep its own
    seed as a pure function of the root seed and the shard's *name* —
    never of scheduling order — so results are identical whether shards
    run serially or spread over N worker processes.
    """
    digest = hashlib.sha256(f"{master_seed}/{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of independent ``random.Random`` streams keyed by name."""

    def __init__(self, master_seed: int = 1983):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is a stable hash of ``(master_seed, name)``, so
        the same name always yields the same sequence for a given master
        seed, independent of creation order.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self.master_seed, name))
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One draw from an exponential distribution with the given mean."""
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        """One draw from Uniform(lo, hi)."""
        return self.stream(name).uniform(lo, hi)

    def choice(self, name: str, seq):
        """One uniformly random element of ``seq``."""
        return self.stream(name).choice(seq)
