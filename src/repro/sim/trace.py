"""Simulation tracing — legacy view over the unified event bus.

Historically every component appended to one flat ``TraceLog``. The
canonical stream now lives in :class:`repro.obs.events.EventBus`;
``TraceLog`` survives as a thin compatibility handle that

* **emits** into one named scope on the bus (``sim`` for the system,
  ``kernel.<n>`` for a node kernel, ``recorder`` for the recorder, ...);
* **reads** bus-wide, so ``system.trace.count("checkpoint")`` still sees
  events regardless of which layer emitted them.

A standalone ``TraceLog()`` (no bus given) creates a private bus, which
keeps the original single-object behaviour for unit tests and ad-hoc
use.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.obs.events import Event, EventBus

#: Legacy alias — trace records are bus events now.
TraceRecord = Event


class TraceLog:
    """A scoped emitter plus a bus-wide read view (legacy API)."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 bus: Optional[EventBus] = None, scope: str = "trace"):
        self.bus = bus if bus is not None else EventBus(clock)
        self._scope = self.bus.scope(scope)

    @property
    def scope_name(self) -> str:
        """The scope this handle emits under."""
        return self._scope.name

    @property
    def records(self) -> List[Event]:
        """The full bus stream (all scopes), in emission order."""
        return self.bus.events

    @property
    def enabled(self) -> bool:
        return self.bus.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.bus.enabled = value

    def emit(self, category: str, subject: str, **detail: Any) -> None:
        """Append a record stamped with the current simulated time."""
        self._scope.emit(category, subject, **detail)

    def select(self, category: Optional[str] = None,
               subject: Optional[str] = None) -> List[Event]:
        """Records matching the given category and/or subject."""
        return self.bus.select(category, subject)

    def count(self, category: Optional[str] = None,
              subject: Optional[str] = None) -> int:
        """Number of records matching the filter."""
        return self.bus.count(category, subject)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.bus.events)

    def __len__(self) -> int:
        return len(self.bus.events)

    def clear(self) -> None:
        """Drop all records."""
        self.bus.clear()
