"""Simulation tracing.

A lightweight append-only trace of interesting events (message sends,
publishes, crashes, recoveries). Used by tests to assert on orderings and
by the replay debugger to show a process's history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, where, when."""

    time: float
    category: str
    subject: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}ms] {self.category:<12} {self.subject} {extras}"


class TraceLog:
    """An in-memory trace with simple filtering helpers."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.records: List[TraceRecord] = []
        self.enabled = True

    def emit(self, category: str, subject: str, **detail: Any) -> None:
        """Append a record stamped with the current simulated time."""
        if not self.enabled:
            return
        self.records.append(TraceRecord(self._clock(), category, subject, detail))

    def select(self, category: Optional[str] = None,
               subject: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given category and/or subject."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if subject is not None and rec.subject != subject:
                continue
            out.append(rec)
        return out

    def count(self, category: Optional[str] = None,
              subject: Optional[str] = None) -> int:
        """Number of records matching the filter."""
        return len(self.select(category, subject))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
