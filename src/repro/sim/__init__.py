"""Deterministic discrete-event simulation engine.

Every node, network medium, disk, and recorder in the reproduction runs on
one :class:`~repro.sim.engine.Engine`. The engine is fully deterministic:
events at equal timestamps fire in scheduling order, and all randomness is
drawn from named, seeded streams (:class:`~repro.sim.rng.RngStreams`).
"""

from repro.sim.engine import (
    Engine,
    EngineCore,
    EventHandle,
    PartitionChannel,
    PartitionedEngine,
    Signal,
)
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Engine",
    "EngineCore",
    "EventHandle",
    "PartitionChannel",
    "PartitionedEngine",
    "Signal",
    "RngStreams",
    "TraceLog",
    "TraceRecord",
]
