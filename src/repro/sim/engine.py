"""The discrete-event engine.

Time is a float, measured in **milliseconds** to match the units used
throughout the thesis (kernel-call costs, disk latencies, and recovery
times are all quoted in ms).

Two programming styles are supported:

* callback events — ``engine.schedule(delay, fn, *args)``;
* coroutine activities — ``engine.spawn(generator)`` where the generator
  yields either a float delay (sleep that long) or a :class:`Signal`
  (sleep until someone fires it).

Determinism: the event heap breaks timestamp ties by insertion sequence,
so two runs that schedule the same events in the same order are
bit-identical. Components must draw randomness only from
:class:`repro.sim.rng.RngStreams`.

Hot-path layout (the ``repro.perf`` engine-churn workload drives this,
and ``tests/test_engine_equivalence.py`` pins the firing order against a
naive reference implementation):

* heap entries are ``(time, seq, handle)`` tuples, so ``heapq`` sifting
  compares floats/ints in C instead of calling ``EventHandle.__lt__``;
* fired and cancelled handles are recycled through a bounded free list
  when the engine can prove (via the CPython reference count) that no
  caller still holds them, so steady-state churn allocates no handles;
* cancelled events are removed lazily, but when more than half of the
  heap is dead the engine compacts it in place, bounding both memory
  and the pop-side cleanup work.

Partitioning: the heap/scheduling internals live in :class:`EngineCore`
(:class:`Engine` adds the Signal/coroutine layer on top), so a
federation can run one core per logical process (LP) and advance them
in lookahead-bounded windows under a :class:`PartitionedEngine` — the
conservative parallel-DES scheme where the only cross-LP edges are
:class:`PartitionChannel`\\ s whose ``lookahead_ms`` (a gateway's
``forward_delay_ms``, §6.2) bounds how far one LP's present can reach
into another's future. See ``docs/PARALLEL_DES.md``.
"""

from __future__ import annotations

import sys
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: Negative delays no larger than this magnitude are float-arithmetic
#: noise (``schedule_at(now + x) - now`` can land a hair below zero) and
#: are clamped to "now"; anything more negative is a genuine attempt to
#: schedule into the past and still raises.
NEGATIVE_DELAY_EPSILON_MS = 1e-9

#: Free-list bound: enough to absorb any realistic in-flight burst
#: without letting a pathological run hoard handles forever.
_FREELIST_MAX = 1024

#: Compact the heap only past this many dead entries (tiny heaps are
#: cheaper to drain lazily than to rebuild).
_COMPACT_MIN_CANCELLED = 64

# CPython only; other implementations simply never recycle handles.
_getrefcount = getattr(sys, "getrefcount", None)


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles are recycled through the engine's free list once the engine
    proves no outside reference remains, so identity comparisons between
    a fired handle and a later one are meaningless — hold the handle if
    you intend to cancel it, and it will never be reused under you.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, engine: Optional["EngineCore"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            engine = self._engine
            if engine is not None:
                engine._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Signal:
    """A one-shot or repeating wakeup that coroutine activities can wait on.

    ``yield signal`` suspends an activity until :meth:`fire` is called; the
    fired value becomes the result of the yield expression.
    """

    __slots__ = ("_engine", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self._engine = engine
        self._waiters: List[Generator] = []
        self.name = name

    def fire(self, value: Any = None) -> int:
        """Wake every activity currently waiting; returns how many woke."""
        waiters, self._waiters = self._waiters, []
        for gen in waiters:
            self._engine._resume(gen, value)
        return len(waiters)

    def _add_waiter(self, gen: Generator) -> None:
        self._waiters.append(gen)


class EngineCore:
    """The heap/scheduling internals of the engine.

    Everything a logical process needs to advance simulated time:
    schedule / cancel / run / step over the ``(time, seq, handle)``
    heap. :class:`Engine` layers the Signal and coroutine-activity API
    on top; a :class:`PartitionedEngine` drives several cores in
    lookahead-bounded windows.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: heap of ``(time, seq, handle)`` — the tuple prefix keeps all
        #: sift comparisons in C; seq is unique so the handle never
        #: participates in a comparison
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._free: List[EventHandle] = []
        self._cancelled = 0       # dead entries still sitting in the heap
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events dispatched so far (for diagnostics)."""
        return self._events_fired

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            if delay >= -NEGATIVE_DELAY_EPSILON_MS:
                delay = 0.0
            else:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})")
        seq = self._seq + 1
        self._seq = seq
        time = self._now + delay
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
            handle._engine = self
        else:
            handle = EventHandle(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def schedule_abs(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the *exact* absolute timestamp.

        ``schedule_at`` computes ``now + (time - now)``, which can land
        an ulp away from ``time``; cross-partition injection needs the
        fire time bit-identical to the one the sending LP stamped, so
        the partition scheduler uses this primitive instead.
        """
        if time < self._now:
            if time < self._now - NEGATIVE_DELAY_EPSILON_MS:
                raise SimulationError(
                    f"cannot schedule into the past (at={time}, now={self._now})")
            time = self._now
        seq = self._seq + 1
        self._seq = seq
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
            handle._engine = self
        else:
            handle = EventHandle(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, handle))
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """One more heap entry went dead; compact when the heap is
        mostly corpses. The compaction mutates the list in place so
        loops holding a reference to it keep seeing live state."""
        count = self._cancelled + 1
        self._cancelled = count
        heap = self._heap
        if count > _COMPACT_MIN_CANCELLED and count * 2 > len(heap):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapify(heap)
            self._cancelled = 0

    def _recycle(self, handle: EventHandle) -> None:
        """A handle just left the heap. Recycle it if nobody else can
        still see it (three refs: caller's local, our parameter, and
        getrefcount's argument); otherwise detach it from the engine so
        a late ``cancel()`` from whoever holds it cannot skew the
        dead-entry accounting."""
        if (_getrefcount is not None and len(self._free) < _FREELIST_MAX
                and _getrefcount(handle) == 3):
            handle.fn = None
            handle.args = ()
            self._free.append(handle)
        else:
            handle._engine = None

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Dispatch events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the simulated time afterwards.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        heap = self._heap       # compaction mutates in place; alias is safe
        free = self._free
        getrefcount = _getrefcount
        fired = 0
        try:
            while heap:
                handle = heap[0][2]
                if handle.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    if (getrefcount is not None and len(free) < _FREELIST_MAX
                            and getrefcount(handle) == 2):
                        handle.fn = None
                        handle.args = ()
                        free.append(handle)
                    continue
                time = handle.time
                if until is not None and time > until:
                    break
                heappop(heap)
                self._now = time
                fn = handle.fn
                args = handle.args
                # Recycle before dispatch: the callback's own schedules
                # can then reuse the handle. Anyone still holding it
                # (refcount > 2) keeps it out of the free list, and is
                # detached instead so a late cancel() stays inert.
                if (getrefcount is not None and len(free) < _FREELIST_MAX
                        and getrefcount(handle) == 2):
                    handle.fn = None
                    handle.args = ()
                    free.append(handle)
                else:
                    handle._engine = None
                fn(*args)
                self._events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Dispatch a single event. Returns False if none are pending."""
        heap = self._heap
        while heap:
            _time, _seq, handle = heappop(heap)
            if handle.cancelled:
                self._cancelled -= 1
                self._recycle(handle)
                continue
            self._now = handle.time
            fn = handle.fn
            args = handle.args
            self._recycle(handle)
            fn(*args)
            self._events_fired += 1
            return True
        return False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap (O(1): the
        engine tracks how many heap entries are dead)."""
        return len(self._heap) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the heap is empty.

        Cancelled heads are popped lazily, so repeated peeks stay O(1)
        amortised instead of sorting the whole heap on every call.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _time, _seq, handle = heappop(heap)
            self._cancelled -= 1
            self._recycle(handle)
        return heap[0][0] if heap else None


class Engine(EngineCore):
    """A deterministic discrete-event simulation engine.

    :class:`EngineCore` plus the Signal and coroutine-activity layer.
    """

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this engine."""
        return Signal(self, name)

    # ------------------------------------------------------------------
    # coroutine activities
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, delay: float = 0.0) -> EventHandle:
        """Start a coroutine activity after ``delay`` ms.

        The generator may yield:

        * a non-negative float — sleep that many ms;
        * a :class:`Signal` — sleep until it fires (yield evaluates to the
          fired value);
        * ``None`` — yield the processor, resume at the same time.
        """
        return self.schedule(delay, self._resume, gen, None)

    def _resume(self, gen: Generator, value: Any) -> None:
        try:
            yielded = gen.send(value)
        except StopIteration:
            return
        if yielded is None:
            self.call_soon(self._resume, gen, None)
        elif isinstance(yielded, Signal):
            yielded._add_waiter(gen)
        elif isinstance(yielded, (int, float)):
            self.schedule(float(yielded), self._resume, gen, None)
        else:
            raise SimulationError(
                f"activity yielded {yielded!r}; expected delay, Signal, or None"
            )


class PartitionChannel:
    """One directed cross-partition edge with a fixed lookahead.

    The sending LP stamps each message with its absolute fire time
    (``claim time + lookahead_ms``) and appends it to the outbox; the
    :class:`PartitionedEngine` drains outboxes at every window barrier
    and injects the messages into the destination LP at their exact
    stamped times. Because a message claimed inside window
    ``(T, T + W]`` fires at ``claim + lookahead > T + W`` (for any
    window ``W <= lookahead_ms``), injection at the barrier is always
    in the destination's future — the conservative-PDES safety
    condition.
    """

    __slots__ = ("key", "src", "dst", "lookahead_ms", "outbox",
                 "deliver", "_seq")

    def __init__(self, key: str, src: int, dst: int, lookahead_ms: float,
                 deliver: Optional[Callable[[Any], None]] = None):
        if lookahead_ms <= 0:
            raise SimulationError(
                f"channel {key!r} needs a positive lookahead, "
                f"got {lookahead_ms}")
        self.key = key
        self.src = src              # source LP index
        self.dst = dst              # destination LP index
        self.lookahead_ms = lookahead_ms
        #: (fire_time, channel_seq, payload), in send order
        self.outbox: List[Tuple[float, int, Any]] = []
        #: destination-side sink, bound where the receiving half lives
        self.deliver = deliver
        self._seq = 0

    def send(self, fire_time: float, payload: Any) -> None:
        """Queue ``payload`` to fire at ``fire_time`` on the far side."""
        self._seq += 1
        self.outbox.append((fire_time, self._seq, payload))

    def drain(self) -> List[Tuple[float, int, Any]]:
        """Take every queued message (called at window barriers)."""
        out, self.outbox = self.outbox, []
        return out


class PartitionedEngine:
    """A conservative windowed-barrier scheduler over several cores.

    Each :class:`EngineCore` is one logical process; the only edges
    between them are :class:`PartitionChannel`\\ s. All LPs advance to
    the same target (``min(lookahead)`` past the last barrier, clipped
    to ``until``), then every channel's outbox is drained, sorted by
    ``(fire_time, channel key, channel seq)``, and injected into the
    destination cores at the exact stamped fire times. The sort makes
    the injection order a pure function of the message set — never of
    which LP ran first — so an in-process staged pass and a process
    pool produce bit-identical schedules.
    """

    def __init__(self, engines: List[EngineCore],
                 channels: List[PartitionChannel]):
        if not engines:
            raise SimulationError("a partitioned engine needs at least one LP")
        self.engines = engines
        self.channels = channels
        for channel in channels:
            if not 0 <= channel.dst < len(engines):
                raise SimulationError(
                    f"channel {channel.key!r} routes to unknown LP "
                    f"{channel.dst}")
        #: the barrier window: the tightest lookahead of any edge
        self.window_ms = (min(c.lookahead_ms for c in channels)
                          if channels else None)
        self._now = 0.0
        self.barriers = 0
        self.messages_exchanged = 0

    @property
    def now(self) -> float:
        """The last barrier time (every LP's clock agrees here)."""
        return self._now

    def run(self, until: float) -> float:
        """Advance every LP to ``until`` in lookahead-bounded windows."""
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards (until={until}, now={self._now})")
        if self.window_ms is None:
            # No cross-LP edges: the LPs are independent simulations.
            for engine in self.engines:
                engine.run(until=until)
            self._now = until
            return self._now
        while self._now < until:
            target = min(until, self._now + self.window_ms)
            for engine in self.engines:
                engine.run(until=target)
            self._exchange()
            self._now = target
            self.barriers += 1
        return self._now

    def _exchange(self) -> None:
        """Drain every outbox and inject at exact stamped times."""
        pending: List[Tuple[float, str, int, PartitionChannel, Any]] = []
        for channel in self.channels:
            for fire_time, seq, payload in channel.drain():
                pending.append((fire_time, channel.key, seq, channel, payload))
        if not pending:
            return
        pending.sort(key=lambda item: (item[0], item[1], item[2]))
        for fire_time, _key, _seq, channel, payload in pending:
            self.engines[channel.dst].schedule_abs(
                fire_time, channel.deliver, payload)
        self.messages_exchanged += len(pending)


def run_simulation(setup: Callable[[Engine], Any], until: float) -> Tuple[Engine, Any]:
    """Convenience wrapper: build an engine, run ``setup``, run to ``until``.

    Returns ``(engine, setup_result)`` so tests can assert on the objects
    the setup function created.
    """
    engine = Engine()
    result = setup(engine)
    engine.run(until=until)
    return engine, result
