"""The discrete-event engine.

Time is a float, measured in **milliseconds** to match the units used
throughout the thesis (kernel-call costs, disk latencies, and recovery
times are all quoted in ms).

Two programming styles are supported:

* callback events — ``engine.schedule(delay, fn, *args)``;
* coroutine activities — ``engine.spawn(generator)`` where the generator
  yields either a float delay (sleep that long) or a :class:`Signal`
  (sleep until someone fires it).

Determinism: the event heap breaks timestamp ties by insertion sequence,
so two runs that schedule the same events in the same order are
bit-identical. Components must draw randomness only from
:class:`repro.sim.rng.RngStreams`.

Hot-path layout (the ``repro.perf`` engine-churn workload drives this,
and ``tests/test_engine_equivalence.py`` pins the firing order against a
naive reference implementation):

* heap entries are ``(time, seq, handle)`` tuples, so ``heapq`` sifting
  compares floats/ints in C instead of calling ``EventHandle.__lt__``;
* fired and cancelled handles are recycled through a bounded free list
  when the engine can prove (via the CPython reference count) that no
  caller still holds them, so steady-state churn allocates no handles;
* cancelled events are removed lazily, but when more than half of the
  heap is dead the engine compacts it in place, bounding both memory
  and the pop-side cleanup work.

Partitioning: the heap/scheduling internals live in :class:`EngineCore`
(:class:`Engine` adds the Signal/coroutine layer on top), so a
federation can run one core per logical process (LP) and advance them
in lookahead-bounded windows under a :class:`PartitionedEngine` — the
conservative parallel-DES scheme where the only cross-LP edges are
:class:`PartitionChannel`\\ s whose ``lookahead_ms`` (a gateway's
``forward_delay_ms``, §6.2) bounds how far one LP's present can reach
into another's future. See ``docs/PARALLEL_DES.md``.
"""

from __future__ import annotations

import math
import sys
from heapq import heapify, heappop, heappush
from typing import (Any, Callable, Dict, Generator, List, Optional, Tuple,
                    Union)

from repro.errors import SimulationError

#: Negative delays no larger than this magnitude are float-arithmetic
#: noise (``schedule_at(now + x) - now`` can land a hair below zero) and
#: are clamped to "now"; anything more negative is a genuine attempt to
#: schedule into the past and still raises.
NEGATIVE_DELAY_EPSILON_MS = 1e-9

#: Free-list bound: enough to absorb any realistic in-flight burst
#: without letting a pathological run hoard handles forever.
_FREELIST_MAX = 1024

#: Compact the heap only past this many dead entries (tiny heaps are
#: cheaper to drain lazily than to rebuild).
_COMPACT_MIN_CANCELLED = 64

# CPython only; other implementations simply never recycle handles.
_getrefcount = getattr(sys, "getrefcount", None)


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles are recycled through the engine's free list once the engine
    proves no outside reference remains, so identity comparisons between
    a fired handle and a later one are meaningless — hold the handle if
    you intend to cancel it, and it will never be reused under you.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, engine: Optional["EngineCore"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            engine = self._engine
            if engine is not None:
                engine._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Signal:
    """A one-shot or repeating wakeup that coroutine activities can wait on.

    ``yield signal`` suspends an activity until :meth:`fire` is called; the
    fired value becomes the result of the yield expression.
    """

    __slots__ = ("_engine", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self._engine = engine
        self._waiters: List[Generator] = []
        self.name = name

    def fire(self, value: Any = None) -> int:
        """Wake every activity currently waiting; returns how many woke."""
        waiters, self._waiters = self._waiters, []
        for gen in waiters:
            self._engine._resume(gen, value)
        return len(waiters)

    def _add_waiter(self, gen: Generator) -> None:
        self._waiters.append(gen)


class EngineCore:
    """The heap/scheduling internals of the engine.

    Everything a logical process needs to advance simulated time:
    schedule / cancel / run / step over the ``(time, seq, handle)``
    heap. :class:`Engine` layers the Signal and coroutine-activity API
    on top; a :class:`PartitionedEngine` drives several cores in
    lookahead-bounded windows.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        #: heap of ``(time, seq, handle)`` — the tuple prefix keeps all
        #: sift comparisons in C; seq is unique so the handle never
        #: participates in a comparison
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._free: List[EventHandle] = []
        self._cancelled = 0       # dead entries still sitting in the heap
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events dispatched so far (for diagnostics)."""
        return self._events_fired

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            if delay >= -NEGATIVE_DELAY_EPSILON_MS:
                delay = 0.0
            else:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})")
        seq = self._seq + 1
        self._seq = seq
        time = self._now + delay
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
            handle._engine = self
        else:
            handle = EventHandle(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def schedule_abs(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the *exact* absolute timestamp.

        ``schedule_at`` computes ``now + (time - now)``, which can land
        an ulp away from ``time``; cross-partition injection needs the
        fire time bit-identical to the one the sending LP stamped, so
        the partition scheduler uses this primitive instead.
        """
        if time < self._now:
            if time < self._now - NEGATIVE_DELAY_EPSILON_MS:
                raise SimulationError(
                    f"cannot schedule into the past (at={time}, now={self._now})")
            time = self._now
        seq = self._seq + 1
        self._seq = seq
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.fn = fn
            handle.args = args
            handle.cancelled = False
            handle._engine = self
        else:
            handle = EventHandle(time, seq, fn, args, self)
        heappush(self._heap, (time, seq, handle))
        return handle

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """One more heap entry went dead; compact when the heap is
        mostly corpses. The compaction mutates the list in place so
        loops holding a reference to it keep seeing live state."""
        count = self._cancelled + 1
        self._cancelled = count
        heap = self._heap
        if count > _COMPACT_MIN_CANCELLED and count * 2 > len(heap):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapify(heap)
            self._cancelled = 0

    def _recycle(self, handle: EventHandle) -> None:
        """A handle just left the heap. Recycle it if nobody else can
        still see it (three refs: caller's local, our parameter, and
        getrefcount's argument); otherwise detach it from the engine so
        a late ``cancel()`` from whoever holds it cannot skew the
        dead-entry accounting."""
        if (_getrefcount is not None and len(self._free) < _FREELIST_MAX
                and _getrefcount(handle) == 3):
            handle.fn = None
            handle.args = ()
            self._free.append(handle)
        else:
            handle._engine = None

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Dispatch events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the simulated time afterwards.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        heap = self._heap       # compaction mutates in place; alias is safe
        free = self._free
        getrefcount = _getrefcount
        fired = 0
        try:
            while heap:
                handle = heap[0][2]
                if handle.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    if (getrefcount is not None and len(free) < _FREELIST_MAX
                            and getrefcount(handle) == 2):
                        handle.fn = None
                        handle.args = ()
                        free.append(handle)
                    continue
                time = handle.time
                if until is not None and time > until:
                    break
                heappop(heap)
                self._now = time
                fn = handle.fn
                args = handle.args
                # Recycle before dispatch: the callback's own schedules
                # can then reuse the handle. Anyone still holding it
                # (refcount > 2) keeps it out of the free list, and is
                # detached instead so a late cancel() stays inert.
                if (getrefcount is not None and len(free) < _FREELIST_MAX
                        and getrefcount(handle) == 2):
                    handle.fn = None
                    handle.args = ()
                    free.append(handle)
                else:
                    handle._engine = None
                fn(*args)
                self._events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Dispatch a single event. Returns False if none are pending."""
        heap = self._heap
        while heap:
            _time, _seq, handle = heappop(heap)
            if handle.cancelled:
                self._cancelled -= 1
                self._recycle(handle)
                continue
            self._now = handle.time
            fn = handle.fn
            args = handle.args
            self._recycle(handle)
            fn(*args)
            self._events_fired += 1
            return True
        return False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap (O(1): the
        engine tracks how many heap entries are dead)."""
        return len(self._heap) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the heap is empty.

        Cancelled heads are popped lazily, so repeated peeks stay O(1)
        amortised instead of sorting the whole heap on every call.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _time, _seq, handle = heappop(heap)
            self._cancelled -= 1
            self._recycle(handle)
        return heap[0][0] if heap else None


class Engine(EngineCore):
    """A deterministic discrete-event simulation engine.

    :class:`EngineCore` plus the Signal and coroutine-activity layer.
    """

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this engine."""
        return Signal(self, name)

    # ------------------------------------------------------------------
    # coroutine activities
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, delay: float = 0.0) -> EventHandle:
        """Start a coroutine activity after ``delay`` ms.

        The generator may yield:

        * a non-negative float — sleep that many ms;
        * a :class:`Signal` — sleep until it fires (yield evaluates to the
          fired value);
        * ``None`` — yield the processor, resume at the same time.
        """
        return self.schedule(delay, self._resume, gen, None)

    def _resume(self, gen: Generator, value: Any) -> None:
        try:
            yielded = gen.send(value)
        except StopIteration:
            return
        if yielded is None:
            self.call_soon(self._resume, gen, None)
        elif isinstance(yielded, Signal):
            yielded._add_waiter(gen)
        elif isinstance(yielded, (int, float)):
            self.schedule(float(yielded), self._resume, gen, None)
        else:
            raise SimulationError(
                f"activity yielded {yielded!r}; expected delay, Signal, or None"
            )


class PartitionChannel:
    """One directed cross-partition edge with a fixed lookahead.

    The sending LP stamps each message with its absolute fire time
    (``claim time + lookahead_ms``) and appends it to the outbox; the
    :class:`PartitionedEngine` drains outboxes at every barrier and
    injects the messages into the destination LP at their exact stamped
    times. A message claimed while the source is at time ``t`` fires at
    ``>= t + lookahead_ms``, which is what lets the destination safely
    run ahead of the source by up to the lookahead.

    ``lookahead_ms`` may be zero (e.g. a recorder LP bridged to its
    cluster's medium, where a tap fires at the exact completion time).
    A zero-lookahead channel contributes no static slack, so the
    destination can only outrun the source by what the source's
    *next-event promise* allows — see
    :meth:`PartitionedEngine.earliest_bounds`.

    ``spacing_ms`` is an optional extra promise: any two messages on
    this channel with distinct fire times are at least ``spacing_ms``
    apart. A serialized broadcast medium guarantees exactly this for
    completion-timed taps (consecutive completions differ by at least
    the interpacket gap), which restores usable slack to an otherwise
    zero-lookahead edge. ``last_fire`` tracks the latest drained fire
    time so the scheduler can apply the spacing floor.
    """

    __slots__ = ("key", "src", "dst", "lookahead_ms", "spacing_ms",
                 "last_fire", "outbox", "deliver", "_seq")

    def __init__(self, key: str, src: int, dst: int, lookahead_ms: float,
                 deliver: Optional[Callable[[Any], None]] = None,
                 spacing_ms: float = 0.0):
        if lookahead_ms < 0:
            raise SimulationError(
                f"channel {key!r} needs a non-negative lookahead, "
                f"got {lookahead_ms}")
        if lookahead_ms == 0 and spacing_ms < 0:
            raise SimulationError(
                f"channel {key!r} needs a non-negative spacing, "
                f"got {spacing_ms}")
        self.key = key
        self.src = src              # source LP index
        self.dst = dst              # destination LP index
        self.lookahead_ms = lookahead_ms
        self.spacing_ms = spacing_ms
        self.last_fire = -math.inf
        #: (fire_time, channel_seq, payload), in send order
        self.outbox: List[Tuple[float, int, Any]] = []
        #: destination-side sink, bound where the receiving half lives
        self.deliver = deliver
        self._seq = 0

    def send(self, fire_time: float, payload: Any) -> None:
        """Queue ``payload`` to fire at ``fire_time`` on the far side."""
        self._seq += 1
        self.outbox.append((fire_time, self._seq, payload))

    def drain(self) -> List[Tuple[float, int, Any]]:
        """Take every queued message (called at window barriers)."""
        out, self.outbox = self.outbox, []
        if out:
            last = out[-1][0]
            if last > self.last_fire:
                self.last_fire = last
        return out


class PartitionedEngine:
    """A conservative barrier scheduler over several logical processes.

    Each :class:`EngineCore` is one logical process (LP); the only edges
    between them are :class:`PartitionChannel`\\ s. Every round the
    scheduler computes, per LP, a *safe-advance target* from the
    incoming channels' individual lookaheads plus each source LP's
    next-event promise (see :meth:`earliest_bounds`), runs every LP to
    its own target, then drains every channel's outbox, sorts by
    ``(fire_time, channel key, channel seq)``, and injects the messages
    into the destination cores at the exact stamped fire times. The
    sort makes the injection order a pure function of the message set —
    never of which LP ran first — so an in-process staged pass and a
    process pool produce bit-identical schedules.

    Because targets are promise-based, a quiet federation fast-forwards
    in a handful of barriers instead of ``duration / min(lookahead)``
    lock-step windows, and a cluster behind a slow gateway no longer
    throttles LPs it has no edge to. ``lockstep=True`` restores the
    historical fixed-window protocol (every LP advances by the global
    minimum lookahead each barrier) — kept as the measured baseline for
    the scaling benchmarks. ``batch_ms`` optionally caps how far any LP
    may run past its current time in one round (the batch factor K in
    time units); ``None`` means unbounded.
    """

    def __init__(self,
                 engines: Union[List[EngineCore], Dict[int, EngineCore]],
                 channels: List[PartitionChannel],
                 lockstep: bool = False,
                 batch_ms: Optional[float] = None):
        if not engines:
            raise SimulationError("a partitioned engine needs at least one LP")
        if isinstance(engines, dict):
            self.engines: Dict[int, EngineCore] = dict(engines)
        else:
            self.engines = dict(enumerate(engines))
        self.channels = channels
        self._order = sorted(self.engines)
        self._incoming: Dict[int, List[PartitionChannel]] = {
            lp: [] for lp in self.engines}
        for channel in channels:
            if channel.src not in self.engines:
                raise SimulationError(
                    f"channel {channel.key!r} originates at unknown LP "
                    f"{channel.src}")
            if channel.dst not in self.engines:
                raise SimulationError(
                    f"channel {channel.key!r} routes to unknown LP "
                    f"{channel.dst}")
            self._incoming[channel.dst].append(channel)
        positive = [c.lookahead_ms for c in channels if c.lookahead_ms > 0]
        #: the historical barrier window: the tightest non-zero lookahead
        self.window_ms = min(positive) if positive else None
        if lockstep and any(c.lookahead_ms <= 0 for c in channels):
            raise SimulationError(
                "lockstep windows need every lookahead positive; "
                "zero-lookahead channels require promise-based targets")
        self.lockstep = lockstep
        self.batch_ms = batch_ms
        self._now = 0.0
        self.barriers = 0
        self.messages_exchanged = 0

    @property
    def now(self) -> float:
        """The last completed target (every LP's clock has reached it)."""
        return self._now

    def earliest_bounds(self) -> Dict[int, float]:
        """Per-LP lower bounds on the next event that can occur there.

        Starting from each LP's own next pending event (and any
        undrained outbox messages headed its way), relax over every
        channel: an event on the destination caused *through* channel
        ``c`` cannot occur before ``bound(src) + lookahead``, nor — when
        the channel promises a spacing — before ``last_fire + spacing``.
        Iterating to the fixed point (Bellman-Ford over non-negative
        edge weights) folds transitive chains, including zero-lookahead
        cycles such as a medium bridged to its recorder LP. The result
        is the null-message-style "no event before T" promise that
        safe-advance targets and the pooled window grants are built on.
        """
        bounds: Dict[int, float] = {}
        for lp in self._order:
            head = self.engines[lp].peek_time()
            bounds[lp] = math.inf if head is None else head
        for channel in self.channels:
            if channel.outbox:
                first = channel.outbox[0][0]
                if first < bounds[channel.dst]:
                    bounds[channel.dst] = first
        for _ in range(len(self._order)):
            changed = False
            for channel in self.channels:
                bound = bounds[channel.src] + channel.lookahead_ms
                if channel.spacing_ms > 0.0:
                    floor = channel.last_fire + channel.spacing_ms
                    if floor > bound:
                        bound = floor
                if bound < bounds[channel.dst]:
                    bounds[channel.dst] = bound
                    changed = True
            if not changed:
                break
        return bounds

    def _target_for(self, lp: int, bounds: Dict[int, float],
                    until: float) -> float:
        engine = self.engines[lp]
        target = until
        for channel in self._incoming[lp]:
            bound = bounds[channel.src] + channel.lookahead_ms
            if channel.spacing_ms > 0.0:
                floor = channel.last_fire + channel.spacing_ms
                if floor > bound:
                    bound = floor
            if bound < target:
                target = bound
        if self.batch_ms is not None:
            cap = engine.now + self.batch_ms
            if cap < target:
                target = cap
        if target < engine.now:
            target = engine.now
        return target

    def run(self, until: float) -> float:
        """Advance every LP to ``until`` behind promise-based barriers."""
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards (until={until}, now={self._now})")
        if not self.channels:
            # No cross-LP edges: the LPs are independent simulations.
            for lp in self._order:
                self.engines[lp].run(until=until)
            self._now = until
            return self._now
        if self.lockstep:
            return self._run_lockstep(until)
        while True:
            bounds = self.earliest_bounds()
            for lp in self._order:
                self.engines[lp].run(
                    until=self._target_for(lp, bounds, until))
            moved = self._exchange()
            self.barriers += 1
            if moved:
                continue
            if all(engine.now >= until and
                   (engine.peek_time() is None
                    or engine.peek_time() > until)
                   for engine in self.engines.values()):
                break
        self._now = until
        return self._now

    def _run_lockstep(self, until: float) -> float:
        """The historical protocol: global-min windows, every barrier."""
        while self._now < until:
            target = min(until, self._now + self.window_ms)
            for lp in self._order:
                self.engines[lp].run(until=target)
            self._exchange()
            self._now = target
            self.barriers += 1
        return self._now

    def _exchange(self) -> int:
        """Drain every outbox and inject at exact stamped times."""
        pending: List[Tuple[float, str, int, PartitionChannel, Any]] = []
        for channel in self.channels:
            for fire_time, seq, payload in channel.drain():
                pending.append((fire_time, channel.key, seq, channel, payload))
        if not pending:
            return 0
        pending.sort(key=lambda item: (item[0], item[1], item[2]))
        for fire_time, _key, _seq, channel, payload in pending:
            self.engines[channel.dst].schedule_abs(
                fire_time, channel.deliver, payload)
        self.messages_exchanged += len(pending)
        return len(pending)


def run_simulation(setup: Callable[[Engine], Any], until: float) -> Tuple[Engine, Any]:
    """Convenience wrapper: build an engine, run ``setup``, run to ``until``.

    Returns ``(engine, setup_result)`` so tests can assert on the objects
    the setup function created.
    """
    engine = Engine()
    result = setup(engine)
    engine.run(until=until)
    return engine, result
