"""The discrete-event engine.

Time is a float, measured in **milliseconds** to match the units used
throughout the thesis (kernel-call costs, disk latencies, and recovery
times are all quoted in ms).

Two programming styles are supported:

* callback events — ``engine.schedule(delay, fn, *args)``;
* coroutine activities — ``engine.spawn(generator)`` where the generator
  yields either a float delay (sleep that long) or a :class:`Signal`
  (sleep until someone fires it).

Determinism: the event heap breaks timestamp ties by insertion sequence,
so two runs that schedule the same events in the same order are
bit-identical. Components must draw randomness only from
:class:`repro.sim.rng.RngStreams`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: Negative delays no larger than this magnitude are float-arithmetic
#: noise (``schedule_at(now + x) - now`` can land a hair below zero) and
#: are clamped to "now"; anything more negative is a genuine attempt to
#: schedule into the past and still raises.
NEGATIVE_DELAY_EPSILON_MS = 1e-9


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Signal:
    """A one-shot or repeating wakeup that coroutine activities can wait on.

    ``yield signal`` suspends an activity until :meth:`fire` is called; the
    fired value becomes the result of the yield expression.
    """

    __slots__ = ("_engine", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self._engine = engine
        self._waiters: List[Generator] = []
        self.name = name

    def fire(self, value: Any = None) -> int:
        """Wake every activity currently waiting; returns how many woke."""
        waiters, self._waiters = self._waiters, []
        for gen in waiters:
            self._engine._resume(gen, value)
        return len(waiters)

    def _add_waiter(self, gen: Generator) -> None:
        self._waiters.append(gen)


class Engine:
    """A deterministic discrete-event simulation engine."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[EventHandle] = []
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events dispatched so far (for diagnostics)."""
        return self._events_fired

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            if delay >= -NEGATIVE_DELAY_EPSILON_MS:
                delay = 0.0
            else:
                raise SimulationError(
                    f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        handle = EventHandle(self._now + delay, self._seq, fn, args)
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute time ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.schedule(0.0, fn, *args)

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this engine."""
        return Signal(self, name)

    # ------------------------------------------------------------------
    # coroutine activities
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, delay: float = 0.0) -> EventHandle:
        """Start a coroutine activity after ``delay`` ms.

        The generator may yield:

        * a non-negative float — sleep that many ms;
        * a :class:`Signal` — sleep until it fires (yield evaluates to the
          fired value);
        * ``None`` — yield the processor, resume at the same time.
        """
        return self.schedule(delay, self._resume, gen, None)

    def _resume(self, gen: Generator, value: Any) -> None:
        try:
            yielded = gen.send(value)
        except StopIteration:
            return
        if yielded is None:
            self.call_soon(self._resume, gen, None)
        elif isinstance(yielded, Signal):
            yielded._add_waiter(gen)
        elif isinstance(yielded, (int, float)):
            self.schedule(float(yielded), self._resume, gen, None)
        else:
            raise SimulationError(
                f"activity yielded {yielded!r}; expected delay, Signal, or None"
            )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Dispatch events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired. Returns the simulated time afterwards.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                head.fn(*head.args)
                self._events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Dispatch a single event. Returns False if none are pending."""
        while self._heap:
            head = heapq.heappop(self._heap)
            if head.cancelled:
                continue
            self._now = head.time
            head.fn(*head.args)
            self._events_fired += 1
            return True
        return False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap."""
        return sum(1 for h in self._heap if not h.cancelled)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the heap is empty.

        Cancelled heads are popped lazily, so repeated peeks stay O(1)
        amortised instead of sorting the whole heap on every call.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None


def run_simulation(setup: Callable[[Engine], Any], until: float) -> Tuple[Engine, Any]:
    """Convenience wrapper: build an engine, run ``setup``, run to ``until``.

    Returns ``(engine, setup_result)`` so tests can assert on the objects
    the setup function created.
    """
    engine = Engine()
    result = setup(engine)
    engine.run(until=until)
    return engine, result
