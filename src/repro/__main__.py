"""Command-line front end: ``python -m repro <command>``.

Commands:

* ``demo``        — run the quickstart scenario (crash + transparent
  recovery) and print a short narrative;
* ``capacity``    — print the §5.1 capacity table for each operating
  point;
* ``utilization`` — print the Figure 5.5 utilization sweep for one
  operating point;
* ``figure57``    — run the Figure 5.6 measurement program with and
  without publishing and print Figure 5.7;
* ``example3_1``  — print the Figure 3.1 recovery-time worked example;
* ``trace``       — run a small crash/recovery scenario and dump the
  instrumentation event stream as JSON lines;
* ``metrics``     — run the same scenario and dump the metrics-registry
  snapshot as JSON;
* ``chaos``       — run a fault campaign (scripted, from a file, or the
  seed-determined monkey) against a live workload and print the
  campaign report (see ``docs/CHAOS.md``);
* ``perf``        — run the deterministic benchmark workloads and write
  ``BENCH_publishing.json`` (see ``docs/PERFORMANCE.md``);
* ``sweep``       — shard an evaluation sweep (chaos seed matrix,
  capacity / utilization / figure57 grids, perf suite) over worker
  processes and merge the results deterministically
  (``--check`` proves parallel == serial digest-for-digest);
* ``federation``  — run sharded-recorder federation cells across
  cluster counts, digest-gating serial vs sweep-runner vs pooled
  execution, and print the federation capacity model's knee against a
  measured gateway (see ``docs/FEDERATION.md``).

``capacity``, ``utilization``, ``chaos`` (with ``--runs K``) and
``perf`` accept ``--parallel N`` to shard their work over N worker
processes; results are identical to serial execution by construction.
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import Program, System, SystemConfig
    from repro.demos.ids import ProcessId
    from repro.demos.links import Link

    class Accumulator(Program):
        def __init__(self):
            super().__init__()
            self.total = 0

        def on_message(self, ctx, m):
            if isinstance(m.body, tuple) and m.body[0] == "add":
                self.total += m.body[1]
                if m.passed_link_id is not None:
                    ctx.send(m.passed_link_id, ("total", self.total))

    class Client(Program):
        def __init__(self, server, n):
            super().__init__()
            self.server = tuple(server)
            self.n = n
            self.i = 0
            self.replies = []

        def attach_kernel(self, kernel):
            self._ctx_kernel = kernel

        def setup(self, ctx):
            pcb = self._ctx_kernel.processes[ctx.pid]
            self.link = self._ctx_kernel.forge_link(
                pcb, Link(dst=ProcessId(*self.server)))
            self._next(ctx)

        def _next(self, ctx):
            if self.i < self.n:
                self.i += 1
                reply = ctx.create_link(code=1)
                ctx.send(self.link, ("add", self.i), pass_link_id=reply)

        def on_message(self, ctx, m):
            if isinstance(m.body, tuple) and m.body[0] == "total":
                self.replies.append(m.body[1])
                self._next(ctx)

    system = System(SystemConfig(nodes=2, medium=args.medium))
    system.registry.register("cli/server", Accumulator)
    system.registry.register("cli/client", Client)
    system.boot()
    server = system.spawn_program("cli/server", node=2)
    client = system.spawn_program("cli/client", args=(tuple(server), 30),
                                  node=1)
    system.run(1200)
    print(f"[t={system.engine.now:7.0f} ms] workload running "
          f"({len(system.program_of(client).replies)} replies in)")
    system.crash_process(server)
    print(f"[t={system.engine.now:7.0f} ms] server CRASHED")
    while len(system.program_of(client).replies) < 30:
        system.run(1000)
    replies = system.program_of(client).replies
    ok = replies == [sum(range(1, k + 1)) for k in range(1, 31)]
    print(f"[t={system.engine.now:7.0f} ms] workload complete")
    print(f"replies exactly match the crash-free run: {ok}")
    print(f"recoveries: {system.recovery.stats.recoveries_completed}, "
          f"messages replayed: {system.recovery.stats.messages_replayed}")
    return 0 if ok else 1


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.parallel import capacity_tasks, run_tasks

    # The same shard path serial and parallel: --parallel N only changes
    # how many worker processes probe the operating points.
    shards = run_tasks(capacity_tasks(), max_workers=args.parallel or 1)
    print(f"{'operating point':<18} {'max users':>9} {'nodes':>6} "
          f"{'bottleneck':>10}")
    for shard in shards:
        p = shard["payload"]
        print(f"{p['point']:<18} {p['users']:>9} {p['nodes']:>6.2f} "
              f"{p['bottleneck']:>10}")
    return 0


def _cmd_utilization(args: argparse.Namespace) -> int:
    from repro.parallel import run_tasks, utilization_tasks
    from repro.queueing import OPERATING_POINTS

    point = OPERATING_POINTS[args.point]
    shards = run_tasks(utilization_tasks(point=args.point),
                       max_workers=args.parallel or 1)
    print(f"operating point: {args.point} "
          f"({point.users_per_node} users/node)")
    print(f"{'disks':>5} {'nodes':>5} {'network':>8} {'cpu':>8} {'disk':>8}")
    for shard in shards:
        p = shard["payload"]
        u = p["utilizations"]
        flag = "  SATURATED" if not p["stable"] else ""
        print(f"{p['disks']:>5} {p['nodes']:>5} {100 * u['network']:>7.1f}% "
              f"{100 * u['cpu']:>7.1f}% {100 * u['disk']:>7.1f}%{flag}")
    return 0


def _cmd_figure57(args: argparse.Namespace) -> int:
    from repro.metrics import measure_send_to_self

    for publishing in (True, False):
        r = measure_send_to_self(publishing=publishing, iterations=256)
        label = "with publishing   " if publishing else "without publishing"
        print(f"{label}: real {r['real_ms_per_iter']:6.2f} ms/iter, "
              f"kernel CPU {r['kernel_cpu_ms_per_iter']:6.2f} ms/iter")
    return 0


def _cmd_example3_1(args: argparse.Namespace) -> int:
    from repro.publishing.recovery_time import figure_3_1_example

    example = figure_3_1_example()
    print(f"after 4-page checkpoint : {example['after_checkpoint_ms']:.0f} ms")
    print(f"after 100 ms of compute : {example['after_compute_ms']:.0f} ms")
    print(f"after one 200 B message : {example['after_message_ms']:.0f} ms")
    return 0


def _run_observed_scenario(medium: str, duration_ms: float, crash: bool):
    """A small deterministic workload that exercises every layer of the
    instrumentation spine: two nodes, a send-to-self measurement program,
    and (optionally) a node crash with transparent recovery."""
    from repro import System, SystemConfig
    from repro.metrics.metering import SendToSelfProgram

    system = System(SystemConfig(nodes=2, medium=medium))
    system.registry.register("metrics/send_to_self", SendToSelfProgram)
    system.boot()
    system.spawn_program("metrics/send_to_self", args=(64,), node=1)
    system.run(duration_ms / 2)
    if crash:
        system.crash_node(2)
    system.run(duration_ms / 2)
    return system


def _write_or_print(text: str, output) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    system = _run_observed_scenario(args.medium, args.duration,
                                    not args.no_crash)
    events = system.obs.bus.select(scope=args.scope) if args.scope \
        else list(system.obs.bus)
    text = "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in events)
    _write_or_print(text, args.output)
    print(f"# {len(events)} events", file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    system = _run_observed_scenario(args.medium, args.duration,
                                    not args.no_crash)
    _write_or_print(system.obs.registry.to_json(), args.output)
    return 0


def _build_demo_campaign(nodes: int):
    """The fixed demo campaign: one of everything, well spaced."""
    from repro.chaos import (
        ChaosCampaign,
        CrashNode,
        CrashRecorder,
        DiskStall,
        Partition,
        RestartRecorder,
    )
    node_ids = list(range(1, nodes + 1))
    actions = [CrashNode(2000.0, node=node_ids[-1])]
    if len(node_ids) >= 2:
        actions.append(Partition(4500.0,
                                 groups=(tuple(node_ids[:1]),
                                         tuple(node_ids[1:])),
                                 duration_ms=1200.0))
    actions.append(DiskStall(7000.0, duration_ms=300.0))
    actions.append(CrashRecorder(9000.0))
    actions.append(RestartRecorder(10500.0))
    return ChaosCampaign(actions, name="demo")


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import load_campaign, monkey_campaign, run_scenario
    from repro.sim.rng import RngStreams

    if args.runs > 1:
        # Seed-matrix mode: shard --runs derived-seed scenarios over
        # --parallel workers (see docs/PERFORMANCE.md).
        return _chaos_matrix(args)

    def build_campaign():
        if args.file:
            return load_campaign(args.file)
        if args.scenario == "monkey":
            return monkey_campaign(RngStreams(args.seed),
                                   list(range(1, args.nodes + 1)),
                                   duration_ms=args.duration)
        return _build_demo_campaign(args.nodes)

    def run_once():
        return run_scenario(build_campaign(), nodes=args.nodes,
                            pairs=args.pairs, messages=args.messages,
                            master_seed=args.seed, medium=args.medium)

    if args.save_campaign:
        build_campaign().save(args.save_campaign)
    result = run_once()
    identical = None
    if args.verify_determinism:
        identical = result.event_stream() == run_once().event_stream()
    ok = result.ok and identical is not False
    if args.json:
        payload = result.report.to_dict()
        payload["totals"] = result.totals
        payload["expected_total"] = result.expected
        if identical is not None:
            payload["replay_identical"] = identical
        payload["ok"] = ok
        _write_or_print(json.dumps(payload, indent=2, sort_keys=True),
                        args.output)
    else:
        text = result.report.format()
        if identical is not None:
            text += ("\n  replay: second run "
                     + ("bit-identical" if identical else "DIVERGED"))
        _write_or_print(text, args.output)
    return 0 if ok else 1


def _cmd_gossip(args: argparse.Namespace) -> int:
    """The epidemic-repair acceptance scenario (docs/GOSSIP.md).

    Crash the recorder mid-traffic, restart it into a log with holes,
    then crash a counter node so recovery must replay across the gap.
    With gossip the holes heal by peer pull and the workload lands
    exactly; the contrast arm (same faults, gossip off, tight retry
    budget) dead-letters instead — the reliability gap the repair path
    closes.
    """
    from repro.chaos import (ChaosCampaign, CrashNode, CrashRecorder,
                             RestartRecorder, run_scenario)

    def build_campaign():
        # Traffic spans roughly 0.7-2.8 s simulated; the outage window
        # sits inside it and the node crash lands after the restart.
        return ChaosCampaign(
            [CrashRecorder(1000.0),
             RestartRecorder(1000.0 + args.outage),
             CrashNode(1000.0 + args.outage + 1400.0, node=args.nodes)],
            name="gossip_repair")

    def run_once(gossip: bool):
        # Node recovery replays the whole log through the recorder's
        # disk path; give the settle phase room for it.
        return run_scenario(
            build_campaign(), nodes=args.nodes, pairs=1,
            messages=args.messages, master_seed=args.seed,
            settle_ms=8000.0,
            config_overrides={"gossip": gossip,
                              "transport_max_retries": 6})

    result = run_once(True)
    identical = None
    if args.verify_determinism:
        identical = result.event_stream() == run_once(True).event_stream()
    contrast = None if args.no_contrast else run_once(False)
    snap = result.system.metrics_snapshot()
    ok = result.ok and identical is not False
    if args.json:
        payload = result.report.to_dict()
        payload["totals"] = result.totals
        payload["expected_total"] = result.expected
        payload["gossip"] = {
            k.split(".", 1)[1]: v for k, v in sorted(snap.items())
            if k.startswith("gossip.")}
        if identical is not None:
            payload["replay_identical"] = identical
        if contrast is not None:
            payload["contrast"] = {
                "ok": contrast.ok,
                "totals": contrast.totals,
                "dead_letters": len(contrast.system.dead_letters),
            }
        payload["ok"] = ok
        _write_or_print(json.dumps(payload, indent=2, sort_keys=True),
                        args.output)
    else:
        lines = [result.report.format()]
        lines.append(
            f"  gossip: flagged={snap.get('gossip.gaps_flagged', 0)} "
            f"repaired={snap.get('gossip.messages_repaired', 0)} "
            f"rounds={snap.get('gossip.rounds', 0)} "
            f"gave_up={snap.get('gossip.gave_up', 0)}")
        if identical is not None:
            lines.append("  replay: second run "
                         + ("bit-identical" if identical else "DIVERGED"))
        if contrast is not None:
            lines.append(
                f"  without gossip: ok={contrast.ok} "
                f"dead_letters={len(contrast.system.dead_letters)} "
                f"totals={contrast.totals} (expected {contrast.expected})")
        _write_or_print("\n".join(lines), args.output)
    return 0 if ok else 1


def _cmd_adversary(args: argparse.Namespace) -> int:
    """The quorum acceptance scenario (docs/ADVERSARY.md).

    A 2f+1 recorder cluster acknowledges all traffic; mid-run the last
    ``--byzantine`` recorders turn Byzantine, then the counter's node
    crashes so recovery must replay through the cross-recorder vote.
    With ``byzantine <= f`` the run must land exactly and flag only the
    faulty recorders; beyond f the corruption must be *detected* —
    divergence or unresolved-vote events, never a silent wrong total.
    """
    from repro.chaos.adversary import run_quorum_scenario

    modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())

    def run_once():
        return run_quorum_scenario(
            f=args.f, byzantine=args.byzantine, messages=args.messages,
            master_seed=args.seed, modes=modes, rate=args.rate,
            equivocate=args.equivocate)

    result = run_once()
    identical = None
    if args.verify_determinism:
        identical = result.event_stream() == run_once().event_stream()
    ok = result.ok and identical is not False
    payload = dict(result.report)
    if identical is not None:
        payload["replay_identical"] = identical
    payload["ok"] = ok
    if args.json:
        _write_or_print(json.dumps(payload, indent=2, sort_keys=True),
                        args.output)
    else:
        r = result.report
        lines = [
            f"adversary quorum — {'PASS' if ok else 'FAIL'} "
            f"(f={r['f']}, {r['byzantine']}/{r['recorders']} byzantine, "
            f"seed {r['seed']})",
            f"  workload: total={r['total']} expected={r['expected']} "
            f"exact={r['exact']}",
            f"  faults injected: {r['faults_injected']} "
            f"(modes {','.join(r['modes'])} at rate {r['rate']})",
            f"  quorum: replays={r['quorum_replays']} "
            f"divergences={r['quorum_divergences']} "
            f"unresolved={r['quorum_unresolved']} "
            f"outvoted={r['outvoted']}",
        ]
        if r["flagged_honest"]:
            lines.append(f"  FLAGGED HONEST RECORDERS: "
                         f"{r['flagged_honest']}")
        if identical is not None:
            lines.append("  replay: second run "
                         + ("bit-identical" if identical else "DIVERGED"))
        _write_or_print("\n".join(lines), args.output)
    return 0 if ok else 1


def _chaos_matrix(args: argparse.Namespace) -> int:
    """``chaos --runs K [--parallel N]``: a sharded seed matrix."""
    from repro.parallel import chaos_matrix_tasks, run_tasks, sweep_digest

    tasks = chaos_matrix_tasks(
        root_seed=args.seed, runs=args.runs, nodes=args.nodes,
        pairs=args.pairs, messages=args.messages, medium=args.medium,
        duration_ms=args.duration,
        campaign=args.file if args.file else None)
    shards = run_tasks(tasks, max_workers=args.parallel)
    if args.verify_determinism:
        replay = run_tasks(tasks, max_workers=1)
        identical = sweep_digest(shards) == sweep_digest(replay)
    else:
        identical = None
    ok = (all(s["payload"]["ok"] for s in shards)
          and identical is not False)
    if args.json:
        payload = {
            "runs": len(shards),
            "digest": sweep_digest(shards),
            "ok": ok,
            "shards": shards,
        }
        if identical is not None:
            payload["replay_identical"] = identical
        _write_or_print(json.dumps(payload, indent=2, sort_keys=True),
                        args.output)
    else:
        lines = [f"chaos seed matrix — {'PASS' if ok else 'FAIL'} "
                 f"({len(shards)} scenarios, "
                 f"digest {sweep_digest(shards)[:16]})"]
        for shard in shards:
            p = shard["payload"]
            report = p["report"]
            lines.append(
                f"  [{'ok' if p['ok'] else 'FAIL'}] {shard['name']:<12} "
                f"seed={dict(shard['params'])['seed']:<22} "
                f"faults={report['faults_injected']:<3} "
                f"t={report['now_ms']:.0f}ms")
        if identical is not None:
            lines.append("  replay: serial re-run "
                         + ("digest-identical" if identical
                            else "DIVERGED"))
        _write_or_print("\n".join(lines), args.output)
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.parallel import run_sweep

    kwargs = {}
    if args.kind == "chaos":
        kwargs = dict(root_seed=args.seed, runs=args.runs,
                      nodes=args.nodes, pairs=args.pairs,
                      messages=args.messages, medium=args.medium,
                      duration_ms=args.duration,
                      campaign=args.file if args.file else None)
    elif args.kind == "capacity":
        kwargs = dict(disks=tuple(int(d) for d in args.disks.split(",")))
    elif args.kind == "utilization":
        kwargs = dict(point=args.point)
    elif args.kind == "figure57":
        kwargs = dict(iterations=args.iterations)
    elif args.kind == "perf":
        kwargs = dict(names=args.workload or None, seed=args.seed,
                      smoke=args.smoke)
    merged = run_sweep(args.kind, max_workers=args.parallel,
                       check=args.check, **kwargs)
    ok = True
    if args.kind == "chaos":
        ok = all(s["payload"]["ok"] for s in merged["shards"])
    if args.check:
        ok = ok and merged["serial_check"]["matches"]
    if args.json or args.output:
        _write_or_print(json.dumps(merged, indent=2, sort_keys=True),
                        args.output)
    if not args.json or args.output:
        workers = merged.get("workers") or "auto"
        print(f"sweep {args.kind}: {merged['count']} shards, "
              f"workers={workers}, wall {merged['wall_ms']:.0f}ms, "
              f"digest {merged['digest'][:16]}")
        if args.check:
            check = merged["serial_check"]
            print("serial check: "
                  + ("MATCH" if check["matches"] else "MISMATCH"))
            for line in check["mismatches"]:
                print(f"  - {line}")
        print(f"result: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_des(args: argparse.Namespace) -> int:
    from repro.parallel.des import DesScenario, equivalence_report

    forward_delays = None
    if args.spread_delays:
        # A deterministic heterogeneous lookahead assignment: every
        # third ring edge gets its own delay.
        forward_delays = tuple(
            ((i, (i + 1) % args.clusters), 3.0 + (i % 5) * 2.0)
            for i in range(0, args.clusters, 3))
    scenario = DesScenario(clusters=args.clusters,
                           cluster_size=args.cluster_size,
                           messages=args.messages,
                           duration_ms=args.duration,
                           topology=args.topology,
                           master_seed=args.seed,
                           forward_delays=forward_delays,
                           recorder_lps=args.recorder_lps,
                           lockstep=args.lockstep,
                           batch_ms=args.batch_ms)
    counts = tuple(args.des_workers or [2])
    report = equivalence_report(scenario, worker_counts=counts,
                                include_staged=True,
                                include_pooled=not args.no_pool)
    ok = report["equivalent"] or not args.check
    if args.json or args.output:
        _write_or_print(json.dumps(report, indent=2, sort_keys=True),
                        args.output)
    if not args.json or args.output:
        print(f"parallel DES: {scenario.clusters} clusters "
              f"({scenario.topology}), {scenario.messages} msg/driver, "
              f"{scenario.duration_ms:.0f}ms sim")
        for run in report["runs"]:
            label = run["mode"]
            if run["partitions"]:
                label += f"({run['partitions']})"
            print(f"  {label:<12} digest {run['digest'][:16]} "
                  f"wall {run['wall_ms']:7.1f}ms "
                  f"barriers {run['barriers']:<6} "
                  f"workload {'ok' if run['workload_ok'] else 'INCOMPLETE'}")
        print("equivalence: "
              + ("byte-identical across all modes"
                 if report["equivalent"] else "DIVERGED"))
    return 0 if ok else 1


def _cmd_federation(args: argparse.Namespace) -> int:
    """The federation acceptance rig: every cell runs serial, through
    the sweep runner (a separate OS process), and pooled — all three
    must agree digest-for-digest — then the capacity model's knee is
    paired with a driven gateway's measured saturation rate."""
    from repro.parallel import federation_tasks, run_tasks
    from repro.parallel.des import DesScenario, run_pooled, run_serial
    from repro.queueing import OPERATING_POINTS
    from repro.queueing.federation import (
        FederationCapacityModel,
        FederationShape,
        measure_gateway_knee,
        modeled_gateway_knee_per_s,
    )

    counts = sorted(set(args.clusters or [4, 8]))
    workers = args.workers or 2
    cells = []
    ok = True
    for clusters in counts:
        scenario = DesScenario(clusters=clusters,
                               cluster_size=args.cluster_size,
                               recorder_shards=args.shards,
                               messages=args.messages,
                               duration_ms=args.duration,
                               topology=args.topology,
                               master_seed=args.seed)
        serial = run_serial(scenario)
        shard = run_tasks(
            federation_tasks(cluster_counts=(clusters,),
                             cluster_size=args.cluster_size,
                             recorder_shards=args.shards,
                             topology=args.topology,
                             messages=args.messages,
                             duration_ms=args.duration,
                             seed=args.seed),
            max_workers=workers)[0]
        pooled = run_pooled(scenario, workers=workers)
        matches = (shard["payload"]["digest"] == serial["digest"]
                   and pooled["digest"] == serial["digest"])
        cell_ok = (matches and serial["workload_ok"]
                   and pooled["workload_ok"])
        ok = ok and cell_ok
        cells.append({
            "clusters": clusters,
            "nodes": clusters * args.cluster_size,
            "recorder_shards": args.shards,
            "digest": serial["digest"],
            "digests_match": matches,
            "workload_ok": serial["workload_ok"] and pooled["workload_ok"],
            "frames_forwarded": serial["frames_forwarded"],
            "serial_wall_ms": round(serial["wall_ms"], 3),
            "pooled_wall_ms": round(pooled["wall_ms"], 3),
            "pooled_barriers": pooled["barriers"],
        })
    modeled_rate = modeled_gateway_knee_per_s(args.service_ms)
    gateway = measure_gateway_knee(
        args.service_ms,
        rates_per_s=tuple(round(modeled_rate * f, 1)
                          for f in (0.6, 0.8, 0.95, 1.05, 1.1, 1.25, 1.5)))
    capacity = {}
    for topology in ("ring", "mesh"):
        shape = FederationShape(clusters=max(max(counts), 2),
                                topology=topology,
                                recorder_shards=args.shards,
                                gateway_service_ms=args.service_ms)
        model = FederationCapacityModel(OPERATING_POINTS["mean"], shape)
        capacity[topology] = model.knee_report()
    report = {
        "cells": cells,
        "capacity": capacity,
        "gateway_knee": gateway,
        "ok": ok,
    }
    if args.json or args.output:
        _write_or_print(json.dumps(report, indent=2, sort_keys=True),
                        args.output)
    if not args.json or args.output:
        print(f"federation scaling ({args.topology}, "
              f"{args.shards} recorder shard(s)/cluster):")
        for cell in cells:
            print(f"  {cell['clusters']:>4} clusters "
                  f"digest {cell['digest'][:16]} "
                  f"serial {cell['serial_wall_ms']:7.1f}ms "
                  f"pooled {cell['pooled_wall_ms']:7.1f}ms "
                  f"{'MATCH' if cell['digests_match'] else 'DIVERGED'}")
        for topology, knee in capacity.items():
            print(f"  capacity[{topology}]: knee {knee['knee_users']} "
                  f"users, bottleneck {knee['bottleneck']}")
        err = gateway.get("relative_error")
        print(f"  gateway knee: modeled {gateway['modeled_knee_per_s']:.0f}/s "
              f"measured {gateway['measured_knee_per_s']}/s "
              f"relative error {err if err is not None else 'n/a'}")
        print(f"result: {'PASS' if ok else 'FAIL'}")
    if args.check and not ok:
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf.harness import main as perf_main

    output = args.output
    if output is None:
        # A partial run must not overwrite the canonical baseline by
        # default; pass --output explicitly to write one anyway.
        if args.workload:
            output = ""
            print("note: --workload selected, skipping default "
                  "BENCH_publishing.json write (use --output to force)")
        else:
            output = "BENCH_publishing.json"
    return perf_main(seed=args.seed, smoke=args.smoke, output=output,
                     only=args.workload or None, compare=args.compare,
                     tolerance=args.tolerance, parallel=args.parallel,
                     best_of=args.best_of)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of Presotto's PUBLISHING (SOSP 1983)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="crash + transparent recovery demo")
    demo.add_argument("--medium", default="broadcast",
                      choices=["broadcast", "acking_ethernet",
                               "csma_ethernet", "star", "token_ring"])
    demo.set_defaults(fn=_cmd_demo)

    def add_parallel(cmd, what):
        cmd.add_argument("--parallel", type=int, default=None, metavar="N",
                         help=f"shard {what} over N worker processes "
                              "(default: serial; results are identical "
                              "either way)")

    cap = sub.add_parser("capacity", help="§5.1 capacity table")
    add_parallel(cap, "the operating-point probes")
    cap.set_defaults(fn=_cmd_capacity)

    util = sub.add_parser("utilization", help="Figure 5.5 sweep")
    util.add_argument("--point", default="mean",
                      choices=["mean", "max_load_average",
                               "max_state_sizes", "max_message_rate"])
    add_parallel(util, "the grid cells")
    util.set_defaults(fn=_cmd_utilization)

    f57 = sub.add_parser("figure57", help="Figure 5.7 measurement")
    f57.set_defaults(fn=_cmd_figure57)

    f31 = sub.add_parser("example3_1", help="Figure 3.1 worked example")
    f31.set_defaults(fn=_cmd_example3_1)

    media_choices = ["broadcast", "acking_ethernet", "csma_ethernet",
                     "star", "token_ring"]
    for name, fn, help_text in (
            ("trace", _cmd_trace,
             "dump the scenario's event stream as JSON lines"),
            ("metrics", _cmd_metrics,
             "dump the scenario's metrics snapshot as JSON")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--medium", default="broadcast",
                         choices=media_choices)
        cmd.add_argument("--duration", type=float, default=5000.0,
                         help="simulated milliseconds to run")
        cmd.add_argument("--no-crash", action="store_true",
                         help="skip the mid-run node crash")
        cmd.add_argument("--output", default=None,
                         help="write to this file instead of stdout")
        if name == "trace":
            cmd.add_argument("--scope", default=None,
                             help="only events whose scope matches this "
                                  "prefix (e.g. 'transport', 'kernel.1')")
        cmd.set_defaults(fn=fn)

    chaos = sub.add_parser(
        "chaos", help="run a fault campaign and print the report")
    chaos.add_argument("--scenario", default="demo",
                       choices=["demo", "monkey"],
                       help="demo: one fixed fault of each kind; "
                            "monkey: seed-determined random campaign")
    chaos.add_argument("--file", default=None,
                       help="load the campaign from this JSON file "
                            "(overrides --scenario)")
    chaos.add_argument("--seed", type=int, default=1983,
                       help="master seed (drives both the workload "
                            "and the monkey)")
    chaos.add_argument("--nodes", type=int, default=3)
    chaos.add_argument("--pairs", type=int, default=3,
                       help="counter/driver pairs in the workload")
    chaos.add_argument("--messages", type=int, default=40,
                       help="request/reply round trips per pair")
    chaos.add_argument("--medium", default="broadcast",
                       choices=media_choices)
    chaos.add_argument("--duration", type=float, default=10_000.0,
                       help="monkey campaign horizon (simulated ms)")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    chaos.add_argument("--verify-determinism", action="store_true",
                       help="run the campaign twice and require "
                            "bit-identical event streams")
    chaos.add_argument("--save-campaign", default=None,
                       help="also write the campaign's action list to "
                            "this JSON file")
    chaos.add_argument("--output", default=None,
                       help="write the report to this file instead of "
                            "stdout")
    chaos.add_argument("--runs", type=int, default=1, metavar="K",
                       help="run a K-scenario seed matrix (seeds derived "
                            "from --seed per shard) instead of a single "
                            "campaign")
    add_parallel(chaos, "the seed matrix (--runs > 1)")
    chaos.set_defaults(fn=_cmd_chaos)

    gossip = sub.add_parser(
        "gossip", help="epidemic-repair acceptance scenario: recorder "
                       "outage mid-traffic, holes healed by peer pull "
                       "(docs/GOSSIP.md)")
    gossip.add_argument("--seed", type=int, default=1983)
    gossip.add_argument("--nodes", type=int, default=2)
    gossip.add_argument("--messages", type=int, default=30,
                        help="request/reply round trips")
    gossip.add_argument("--outage", type=float, default=1200.0,
                        help="recorder outage length (simulated ms)")
    gossip.add_argument("--no-contrast", action="store_true",
                        help="skip the gossip-off contrast arm")
    gossip.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    gossip.add_argument("--verify-determinism", action="store_true",
                        help="run the gossip arm twice and require "
                             "bit-identical event streams")
    gossip.add_argument("--output", default=None,
                        help="write the report to this file instead of "
                             "stdout")
    gossip.set_defaults(fn=_cmd_gossip)

    adversary = sub.add_parser(
        "adversary", help="Byzantine-recorder quorum acceptance "
                          "scenario: 2f+1 recorders outvote faulty "
                          "logs during replay (docs/ADVERSARY.md)")
    adversary.add_argument("--seed", type=int, default=1983)
    adversary.add_argument("--f", type=int, default=1,
                           help="fault tolerance: 2f+1 recorders run")
    adversary.add_argument("--byzantine", type=int, default=1,
                           help="how many recorders turn Byzantine")
    adversary.add_argument("--messages", type=int, default=30,
                           help="request/reply round trips")
    adversary.add_argument("--modes",
                           default="drop,corrupt,duplicate,reorder",
                           help="comma-separated Byzantine fault modes")
    adversary.add_argument("--rate", type=float, default=0.3,
                           help="per-record fault probability")
    adversary.add_argument("--equivocate", action="store_true",
                           help="faulty recorders also log shared "
                                "divergent payloads")
    adversary.add_argument("--json", action="store_true",
                           help="emit the report as JSON")
    adversary.add_argument("--verify-determinism", action="store_true",
                           help="run the scenario twice and require "
                                "bit-identical event streams")
    adversary.add_argument("--output", default=None,
                           help="write the report to this file instead "
                                "of stdout")
    adversary.set_defaults(fn=_cmd_adversary)

    sweep = sub.add_parser(
        "sweep", help="shard an evaluation sweep over worker processes "
                      "and merge the results deterministically")
    sweep.add_argument("--kind", default="chaos",
                       choices=["chaos", "capacity", "utilization",
                                "figure57", "perf"])
    add_parallel(sweep, "the sweep")
    sweep.add_argument("--check", action="store_true",
                       help="also run serially and fail on any shard "
                            "digest mismatch")
    sweep.add_argument("--seed", type=int, default=1983,
                       help="root seed (chaos/perf kinds)")
    sweep.add_argument("--runs", type=int, default=9,
                       help="chaos: scenarios in the seed matrix")
    sweep.add_argument("--nodes", type=int, default=3)
    sweep.add_argument("--pairs", type=int, default=2)
    sweep.add_argument("--messages", type=int, default=20)
    sweep.add_argument("--medium", default="broadcast",
                       choices=media_choices)
    sweep.add_argument("--duration", type=float, default=4000.0,
                       help="chaos: monkey campaign horizon (sim ms)")
    sweep.add_argument("--file", default=None,
                       help="chaos: replay this campaign JSON file in "
                            "every shard instead of per-shard monkeys")
    sweep.add_argument("--disks", default="1",
                       help="capacity: comma-separated disk counts")
    sweep.add_argument("--point", default="mean",
                       choices=["mean", "max_load_average",
                                "max_state_sizes", "max_message_rate"],
                       help="utilization: operating point")
    sweep.add_argument("--iterations", type=int, default=256,
                       help="figure57: send-to-self iterations")
    sweep.add_argument("--workload", action="append", default=None,
                       metavar="NAME", help="perf: only this workload "
                                            "(repeatable)")
    sweep.add_argument("--smoke", action="store_true",
                       help="perf: smoke-size workloads")
    sweep.add_argument("--json", action="store_true",
                       help="emit the merged report as JSON")
    sweep.add_argument("--output", default=None,
                       help="write the merged report JSON to this file")
    sweep.set_defaults(fn=_cmd_sweep)

    des = sub.add_parser(
        "des", help="run one federation serially and conservatively "
                    "partitioned (parallel DES) and compare digests")
    des.add_argument("--clusters", type=int, default=8,
                     help="clusters in the federation")
    des.add_argument("--cluster-size", type=int, default=1,
                     help="nodes per cluster")
    des.add_argument("--messages", type=int, default=6,
                     help="request/reply pairs per driver")
    des.add_argument("--duration", type=float, default=3000.0,
                     help="simulated run length after settle (ms)")
    des.add_argument("--topology", default="ring",
                     choices=["ring", "mesh"])
    des.add_argument("--seed", type=int, default=1983)
    des.add_argument("--des-workers", type=int, action="append",
                     default=None, metavar="N",
                     help="partition/worker count to test (repeatable; "
                          "default 2)")
    des.add_argument("--no-pool", action="store_true",
                     help="skip the process-pool runs (staged only)")
    des.add_argument("--recorder-lps", action="store_true",
                     help="split each cluster's recorder onto its own "
                          "LP behind zero-lookahead bridge channels")
    des.add_argument("--lockstep", action="store_true",
                     help="use the global-min-window baseline protocol "
                          "instead of next-event promises")
    des.add_argument("--batch-ms", type=float, default=None,
                     metavar="MS",
                     help="cap how far one barrier may advance any LP "
                          "(default: unbounded idle fast-forward)")
    des.add_argument("--spread-delays", action="store_true",
                     help="assign heterogeneous per-edge gateway "
                          "delays instead of one uniform lookahead")
    des.add_argument("--check", action="store_true",
                     help="exit 1 unless every mode's digest matches "
                          "the serial run byte-for-byte")
    des.add_argument("--json", action="store_true",
                     help="emit the full report as JSON")
    des.add_argument("--output", default=None,
                     help="write the report JSON to this file")
    des.set_defaults(fn=_cmd_des)

    federation = sub.add_parser(
        "federation", help="sharded-recorder federation scaling cells "
                           "with a three-way digest gate and the "
                           "capacity-model knee (docs/FEDERATION.md)")
    federation.add_argument("--clusters", type=int, action="append",
                            default=None, metavar="N",
                            help="cluster count to run (repeatable; "
                                 "default 4 and 8)")
    federation.add_argument("--cluster-size", type=int, default=2,
                            help="nodes per cluster")
    federation.add_argument("--shards", type=int, default=2,
                            help="recorder shards per cluster")
    federation.add_argument("--topology", default="ring",
                            choices=["ring", "mesh"])
    federation.add_argument("--messages", type=int, default=3,
                            help="request/reply pairs per driver")
    federation.add_argument("--duration", type=float, default=2000.0,
                            help="simulated run length after settle (ms)")
    federation.add_argument("--seed", type=int, default=1983)
    federation.add_argument("--workers", type=int, default=None,
                            metavar="N",
                            help="worker processes for the sweep and "
                                 "pooled comparisons (default 2)")
    federation.add_argument("--service-ms", type=float, default=2.0,
                            help="gateway uplink serialisation time for "
                                 "the capacity section")
    federation.add_argument("--check", action="store_true",
                            help="exit 1 unless every cell's three "
                                 "execution modes agree digest-for-digest")
    federation.add_argument("--json", action="store_true",
                            help="emit the report as JSON")
    federation.add_argument("--output", default=None,
                            help="write the report JSON to this file")
    federation.set_defaults(fn=_cmd_federation)

    perf = sub.add_parser(
        "perf", help="run the benchmark workloads, write "
                     "BENCH_publishing.json")
    perf.add_argument("--smoke", action="store_true",
                      help="small workload sizes (seconds, for CI)")
    perf.add_argument("--seed", type=int, default=1983,
                      help="master seed for every workload")
    from repro.perf.workloads import WORKLOADS
    # choices= is deliberately not used: the harness validates names
    # itself (exit 2 with the full list), which keeps the repeatable
    # flag's error identical however the workload set grows.
    perf.add_argument("--workload", action="append", default=None,
                      metavar="NAME",
                      help="run only this workload (repeatable); "
                           "default: all of " + ", ".join(WORKLOADS))
    perf.add_argument("--output", default=None,
                      help="report path ('' to skip writing; default "
                           "BENCH_publishing.json for full-suite runs)")
    perf.add_argument("--compare", default=None, metavar="BASELINE.json",
                      help="fail (exit 1) if any workload's ops/sec "
                           "regressed more than --tolerance vs this "
                           "earlier report")
    perf.add_argument("--best-of", type=int, default=3, metavar="N",
                      help="interleaved suite passes, fastest pass kept "
                           "per workload: measures the noise floor "
                           "instead of one scheduler sample, and spaces "
                           "repetitions so one load burst cannot bias a "
                           "workload's figure (default 3)")
    perf.add_argument("--tolerance", type=float, default=0.25,
                      help="allowed fractional throughput drop for "
                           "--compare (default 0.25)")
    add_parallel(perf, "the workloads (timings run under contention)")
    perf.set_defaults(fn=_cmd_perf)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); die quietly.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
