"""Compact wire format for routed frames (the pooled DES hot path).

Every window barrier, each pool worker ships the frames its gateway
taps claimed to the parent, and the parent routes them back out to the
destination workers — so frame (de)serialization sits directly on the
barrier critical path. Naively ``pickle``-ing the routed tuples pays
per-object protocol overhead for every frame: class dispatch, slot
state dicts, enum reduction, and per-tuple framing.

This codec flattens a whole batch instead:

* the numeric columns of every routed item — fire time, channel seq,
  destination LP, and the :class:`~repro.net.frames.Frame` shell
  (kind, src/dst node, size, frame id, checksum, recorder ack) — are
  packed as fixed-width ``struct`` records;
* channel keys are deduplicated into a small string table (a batch
  touches few distinct channels, so each key is encoded once);
* the arbitrary Python payloads are pickled **once**, as a single
  list, amortizing pickle's framing over the whole batch.

Decoding rebuilds byte-identical frames: ``frame_id`` and ``checksum``
are carried verbatim (never re-derived), so digests and checksum
validation behave exactly as if the object had crossed by reference.
The payload-CRC cache is deliberately not shipped — it is recomputed
lazily on first use and can never change an observable value.

``benchmarks/test_micro_hotpaths.py`` pins the speedup over the pickle
baseline (:func:`repro.perf.baseline.pickle_frame_batch`) at >= 2x.
"""

from __future__ import annotations

import pickle
import struct
from typing import List, Tuple

from repro.errors import ReproError
from repro.net.frames import Frame, FrameKind

#: One routed item: (fire_time, channel key, channel seq, frame, dst LP).
RoutedFrame = Tuple[float, str, int, Frame, int]

_MAGIC = b"RBF1"
#: fire_time f64, key index u16, channel seq u32, dst LP i32,
#: kind u8, src_node i32, dst_node i32 (BROADCAST is -1),
#: size_bytes u32, frame_id u64, checksum u16, recorder_acked u8
_RECORD = struct.Struct("<dHIiBiiIQHB")
_HEAD = struct.Struct("<4sIH")
_KEYLEN = struct.Struct("<H")

_KINDS: Tuple[FrameKind, ...] = tuple(FrameKind)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}


def encode_frame_batch(items: List[RoutedFrame]) -> bytes:
    """Encode one barrier's routed frames as a flat byte string."""
    keys: List[str] = []
    key_index = {}
    records = bytearray()
    payloads = []
    pack = _RECORD.pack
    for fire_time, key, seq, frame, dst in items:
        index = key_index.get(key)
        if index is None:
            index = key_index[key] = len(keys)
            keys.append(key)
        records += pack(fire_time, index, seq, dst,
                        _KIND_CODE[frame.kind], frame.src_node,
                        frame.dst_node, frame.size_bytes, frame.frame_id,
                        frame.checksum, 1 if frame.recorder_acked else 0)
        payloads.append(frame.payload)
    head = _HEAD.pack(_MAGIC, len(items), len(keys))
    table = bytearray()
    for key in keys:
        raw = key.encode("utf-8")
        table += _KEYLEN.pack(len(raw))
        table += raw
    blob = pickle.dumps(payloads, protocol=pickle.HIGHEST_PROTOCOL)
    return head + bytes(table) + bytes(records) + blob


def decode_frame_batch(data: bytes) -> List[RoutedFrame]:
    """Rebuild the routed items of :func:`encode_frame_batch`."""
    magic, count, key_count = _HEAD.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ReproError(f"bad frame-batch magic {magic!r}")
    offset = _HEAD.size
    keys: List[str] = []
    for _ in range(key_count):
        (length,) = _KEYLEN.unpack_from(data, offset)
        offset += _KEYLEN.size
        keys.append(data[offset:offset + length].decode("utf-8"))
        offset += length
    body = offset + count * _RECORD.size
    payloads = pickle.loads(data[body:])
    if len(payloads) != count:
        raise ReproError(
            f"frame batch carries {count} records but "
            f"{len(payloads)} payloads")
    items: List[RoutedFrame] = []
    append = items.append
    kinds = _KINDS
    for index, record in enumerate(_RECORD.iter_unpack(data[offset:body])):
        (fire_time, key_idx, seq, dst, kind, src_node, dst_node,
         size_bytes, frame_id, checksum, recorder_acked) = record
        frame = Frame(kinds[kind], src_node, dst_node, payloads[index],
                      size_bytes, frame_id, checksum, recorder_acked == 1)
        append((fire_time, keys[key_idx], seq, frame, dst))
    return items
