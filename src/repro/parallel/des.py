"""Conservative parallel DES over cluster federations.

A federation's gateways are its only cross-cluster edges, and every
gateway imposes a fixed, positive ``forward_delay_ms`` before a claimed
frame re-enters the world on the far medium. That delay is the
*lookahead* of its channel — and each channel carries its **own**
lookahead, so a slow edge widens its destination's safe window instead
of throttling everyone to the global minimum. On top of the static
lookaheads, every logical process (LP) publishes a *next-event promise*
(the earliest simulated time anything can happen there, relaxed over
the channel graph — see
:meth:`~repro.sim.engine.PartitionedEngine.earliest_bounds`), which is
what lets idle stretches fast-forward in one barrier and lets
zero-lookahead edges (a recorder bridged to its cluster medium) exist
at all.

Three execution modes over one scenario:

* :func:`run_serial` — the reference: every cluster on one engine.
* :func:`run_staged` — one engine per LP in a single process, driven by
  :class:`~repro.sim.engine.PartitionedEngine`. No parallelism, but it
  exercises the exact promise/barrier protocol; its digests must equal
  the serial run's.
* :func:`run_pooled` — one OS process per LP group. Each worker
  deterministically rebuilds its shard (``ClusterFederation(...,
  partitions=P, only_partition=k)`` — the same wiring code as staged
  mode) and drives it with the slice's own
  :meth:`~repro.cluster.gateways.ClusterFederation.local_scheduler`;
  the parent grants promise-derived advance targets over pipes and
  routes the frames drained from cross-worker channels, batched per
  barrier in the compact wire format (:mod:`repro.parallel.wire`).
  Digests must again be identical. ``lockstep=True`` retains the
  historical global-min-window protocol as the measured baseline the
  promise protocol is benchmarked against (``des_scaling`` in
  :mod:`repro.perf.workloads`).

The per-cluster digest covers the full trace-event stream and metrics
snapshot, so "byte-identical" means every layer of every cluster saw
the same events at the same simulated times in the same order.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.workload import (
    CHAOS_COUNTER_IMAGE,
    CHAOS_DRIVER_IMAGE,
    ChaosCounter,
    ChaosDriver,
    expected_total,
    register_chaos_programs,
)
from repro.cluster.gateways import ClusterFederation, directed_gateways
from repro.errors import ReproError
from repro.parallel.runner import _mp_context, canonical_json
from repro.parallel.wire import decode_frame_batch, encode_frame_batch
from repro.publishing.recorder_lp import recorder_side_prefixes
from repro.system import System, SystemConfig

#: Metrics that legitimately differ between one-engine and N-engine
#: execution of the *same* events: each System's ``sim.events_fired``
#: gauge reads its (possibly shared) engine's global event counter.
DES_VOLATILE_METRICS = frozenset({"sim.events_fired"})

#: How long the pool master waits for a worker reply before declaring
#: the child dead (wall-clock seconds; generous — a reply normally
#: arrives in milliseconds).
POOL_REPLY_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class DesScenario:
    """One reproducible federation workload, identical in every mode.

    Each cluster runs a :class:`~repro.chaos.workload.ChaosCounter` and
    a :class:`~repro.chaos.workload.ChaosDriver` targeting the *next*
    cluster's counter, so every add/total round trip crosses two
    gateways. Driver start times are staggered per cluster
    (``stagger_ms``) so distinct channels never collide on exact event
    timestamps.

    The partitioning knobs (all preserved digest-identically):

    * ``forward_delays`` — per-directed-edge gateway delays as
      ``(((src, dst), delay_ms), ...)``; unlisted edges fall back to
      ``forward_delay_ms``. Each delay is that channel's lookahead.
    * ``recorder_lps`` — each cluster's recorder on its own engine,
      bridged by zero-lookahead channels (staged/pooled modes only;
      the serial reference keeps one engine regardless).
    * ``batch_ms`` — cap how far one barrier may advance any LP; the
      default (None) lets quiet stretches fast-forward in one grant.
    * ``lockstep`` — the historical global-min-window protocol, kept
      as the measured baseline; incompatible with ``recorder_lps``.
    """

    clusters: int = 4
    cluster_size: int = 1
    recorder_shards: int = 1
    messages: int = 6
    duration_ms: float = 3000.0
    settle_ms: float = 500.0
    stagger_ms: float = 7.3
    topology: str = "ring"
    forward_delay_ms: float = 5.0
    master_seed: int = 1983
    forward_delays: Optional[Tuple[Tuple[Tuple[int, int], float], ...]] = None
    recorder_lps: bool = False
    lockstep: bool = False
    batch_ms: Optional[float] = None

    def validate(self) -> None:
        if self.clusters < 2:
            raise ReproError("a DES scenario needs at least 2 clusters")
        if self.forward_delay_ms <= 0:
            raise ReproError("forward_delay_ms must be positive (lookahead)")
        for edge, delay in (self.forward_delays or ()):
            if delay <= 0:
                raise ReproError(
                    f"forward delay for edge {edge} must be positive, "
                    f"got {delay}")
        if self.lockstep and self.recorder_lps:
            raise ReproError(
                "lockstep windows need every lookahead positive; "
                "recorder bridges are zero-lookahead channels")
        if self.recorder_shards < 1:
            raise ReproError("recorder_shards must be >= 1")
        if self.recorder_shards > 1 and self.recorder_lps:
            raise ReproError(
                "recorder shards live on the cluster engine; they are "
                "mutually exclusive with a dedicated recorder LP")
        if self.batch_ms is not None and self.batch_ms <= 0:
            raise ReproError("batch_ms must be positive when set")

    def forward_delay_map(self) -> Dict[Tuple[int, int], float]:
        return dict(self.forward_delays or ())


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def cluster_digest(system: System) -> str:
    """SHA-256 over one cluster's full event stream + metrics snapshot
    (minus :data:`DES_VOLATILE_METRICS`).

    The event stream is hashed as two sub-streams — medium-side scopes
    and recorder-side scopes (:func:`recorder_side_prefixes`) — because
    the shared bus appends in execution order: when the recorder runs
    as its own LP its appends interleave with the medium's by barrier
    window rather than strictly by time, while each side's own order
    (and every timestamp, and the metrics) is identical to the serial
    run. Hashing per side makes the digest a pure function of what each
    component observed, in every execution mode.
    """
    snapshot = {key: value for key, value in system.metrics_snapshot().items()
                if key not in DES_VOLATILE_METRICS}
    prefixes = recorder_side_prefixes(system.config.recorder_node_id)

    def recorder_side(scope: str) -> bool:
        return any(scope == p or scope.startswith(p + ".")
                   for p in prefixes)

    medium_lines: List[str] = []
    recorder_lines: List[str] = []
    for event in system.obs.bus.events:
        line = json.dumps(event.to_dict(), sort_keys=True)
        (recorder_lines if recorder_side(event.scope)
         else medium_lines).append(line)
    blob = ("\n".join(medium_lines) + "\n=recorder=\n"
            + "\n".join(recorder_lines) + "\n" + canonical_json(snapshot))
    return hashlib.sha256(blob.encode()).hexdigest()


def federation_digest(per_cluster: Dict[int, str]) -> str:
    """One digest over all per-cluster digests, order-independent."""
    canon = canonical_json({str(k): per_cluster[k]
                            for k in sorted(per_cluster)})
    return hashlib.sha256(canon.encode()).hexdigest()


# ----------------------------------------------------------------------
# scenario construction (shared by every mode and every pool worker)
# ----------------------------------------------------------------------
def build_federation(scenario: DesScenario,
                     partitions: Optional[int] = None,
                     only_partition: Optional[int] = None) -> ClusterFederation:
    scenario.validate()
    configs = [SystemConfig(nodes=scenario.cluster_size,
                            master_seed=scenario.master_seed,
                            recorder_shards=scenario.recorder_shards)
               for _ in range(scenario.clusters)]
    fed = ClusterFederation(
        [scenario.cluster_size] * scenario.clusters,
        forward_delay_ms=scenario.forward_delay_ms,
        topology=scenario.topology,
        configs=configs,
        partitions=partitions,
        only_partition=only_partition,
        forward_delays=scenario.forward_delay_map() or None,
        recorder_lps=scenario.recorder_lps and partitions is not None,
        lockstep=scenario.lockstep,
        batch_ms=scenario.batch_ms)
    for system in fed.clusters:
        register_chaos_programs(system)
    return fed


def _spawn_driver(system: System, target: Tuple[int, int],
                  messages: int) -> None:
    system.spawn_program(CHAOS_DRIVER_IMAGE, args=(target, messages),
                         node=system.config.first_node_id)


def spawn_workload(fed: ClusterFederation, scenario: DesScenario) -> None:
    """Spawn the ring workload on every *local* cluster.

    Counters are spawned synchronously (engines idle at the settle
    barrier) in ascending cluster order; every cluster boots through
    the identical sequence, so the counter's local pid component is the
    same on all of them — which is how a pool worker knows the pid of a
    counter it never built. Drivers are then scheduled as staggered
    engine events, so their timestamps are identical in every mode.
    """
    counter_local: Optional[int] = None
    for index in sorted(fed.systems):
        system = fed.systems[index]
        pid = system.spawn_program(CHAOS_COUNTER_IMAGE,
                                   node=system.config.first_node_id)
        if counter_local is None:
            counter_local = pid.local
        elif pid.local != counter_local:
            raise ReproError(
                f"counter local ids diverged: {pid.local} != {counter_local}")
    for index in sorted(fed.systems):
        system = fed.systems[index]
        target_cluster = (index + 1) % scenario.clusters
        target = (fed.configs[target_cluster].first_node_id, counter_local)
        delay = 1.0 + scenario.stagger_ms * index
        system.engine.schedule(delay, _spawn_driver, system, target,
                               scenario.messages)


def _programs_of(system: System, cls) -> List[Any]:
    out = []
    for node_id in sorted(system.nodes):
        kernel = system.nodes[node_id].kernel
        for pid in sorted(kernel.processes):
            program = kernel.processes[pid].program
            if isinstance(program, cls):
                out.append(program)
    return out


def collect_local(fed: ClusterFederation,
                  scenario: DesScenario) -> Dict[str, Any]:
    """Digest + workload summary for every cluster this federation
    (or slice) owns. Pure data — safe to send over a pipe."""
    per_cluster: Dict[int, str] = {}
    replies: Dict[int, int] = {}
    totals: Dict[int, int] = {}
    for index, system in sorted(fed.systems.items()):
        per_cluster[index] = cluster_digest(system)
        drivers = _programs_of(system, ChaosDriver)
        counters = _programs_of(system, ChaosCounter)
        replies[index] = len(drivers[0].replies) if drivers else 0
        totals[index] = counters[0].total if counters else 0
    return {
        "per_cluster": per_cluster,
        "replies": replies,
        "totals": totals,
        "frames_forwarded": sum(g.frames_forwarded for g in fed.gateways),
        "frames_dropped": sum(g.frames_dropped for g in fed.gateways),
        "gateway_retries": sum(g.retries for g in fed.gateways),
        "dead_letters": len(fed.dead_letters),
    }


def _merge_collected(parts: Sequence[Dict[str, Any]],
                     scenario: DesScenario) -> Dict[str, Any]:
    per_cluster: Dict[int, str] = {}
    replies: Dict[int, int] = {}
    totals: Dict[int, int] = {}
    counters = {"frames_forwarded": 0, "frames_dropped": 0,
                "gateway_retries": 0, "dead_letters": 0}
    for part in parts:
        per_cluster.update(part["per_cluster"])
        replies.update(part["replies"])
        totals.update(part["totals"])
        for key in counters:
            counters[key] += part[key]
    expected = expected_total(scenario.messages)
    ok = (len(per_cluster) == scenario.clusters
          and all(replies.get(i) == scenario.messages
                  for i in range(scenario.clusters))
          and all(totals.get(i) == expected
                  for i in range(scenario.clusters)))
    return {
        "digest": federation_digest(per_cluster),
        "per_cluster": {str(k): per_cluster[k] for k in sorted(per_cluster)},
        "replies": [replies.get(i, 0) for i in range(scenario.clusters)],
        "totals": [totals.get(i, 0) for i in range(scenario.clusters)],
        "expected_total": expected,
        "workload_ok": ok,
        **counters,
    }


# ----------------------------------------------------------------------
# in-process modes
# ----------------------------------------------------------------------
def _run_inprocess(scenario: DesScenario,
                   partitions: Optional[int]) -> Dict[str, Any]:
    started = time.perf_counter()
    fed = build_federation(scenario, partitions=partitions)
    fed.boot(settle_ms=scenario.settle_ms)
    spawn_workload(fed, scenario)
    fed.run(scenario.duration_ms)
    result = _merge_collected([collect_local(fed, scenario)], scenario)
    result.update({
        "mode": "serial" if partitions is None else "staged",
        "partitions": partitions or 0,
        "clusters": scenario.clusters,
        "sim_ms": scenario.settle_ms + scenario.duration_ms,
        "wall_ms": (time.perf_counter() - started) * 1000.0,
        "barriers": fed.scheduler.barriers if fed.scheduler else 0,
        "messages_exchanged": (fed.scheduler.messages_exchanged
                               if fed.scheduler else 0),
    })
    return result


def run_serial(scenario: DesScenario) -> Dict[str, Any]:
    """The reference execution: one engine, no windows."""
    return _run_inprocess(scenario, partitions=None)


def run_staged(scenario: DesScenario, partitions: int) -> Dict[str, Any]:
    """One engine per LP, promise-based barrier sync, single process."""
    return _run_inprocess(scenario, partitions=partitions)


# ----------------------------------------------------------------------
# process-pool mode
# ----------------------------------------------------------------------
def _worker_bounds(fed: ClusterFederation) -> Dict[int, Optional[float]]:
    """Each local LP's next pending event time (None = idle) — the raw
    material of the parent's global next-event promises."""
    return {lp: engine.peek_time() for lp, engine in fed.engines.items()}


def _pool_worker(conn, scenario: DesScenario, partitions: int,
                 shard: int) -> None:
    """One LP group in its own process: rebuild the shard, then follow
    the parent's grant protocol over the pipe.

    Every reply carries fresh per-LP next-event bounds, so the parent's
    promises can never go stale across boot/checkpoint/spawn commands.
    An uncaught exception is reported as ``("error", traceback)`` so
    the parent can surface the child's stack instead of hanging.
    """
    try:
        fed = build_federation(scenario, partitions=partitions,
                               only_partition=shard)
        scheduler = fed.local_scheduler()
        in_channels = {channel.key: channel for channel in fed.channels
                       if channel.dst in fed.engines
                       and channel.src not in fed.engines}
        out_channels = [channel for channel in fed.channels
                        if channel.src in fed.engines
                        and channel.dst not in fed.engines]
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "boot":
                for system in fed.clusters:
                    system.boot(settle_ms=0.0)
                conn.send(("ok", _worker_bounds(fed)))
            elif kind == "advance":
                _, target, blob = command
                if blob:
                    # inbound arrives pre-sorted by (fire_time, key,
                    # seq) — the same order PartitionedEngine._exchange
                    # injects in
                    for fire_time, key, _seq, frame, _dst in \
                            decode_frame_batch(blob):
                        channel = in_channels[key]
                        fed.engines[channel.dst].schedule_abs(
                            fire_time, channel.deliver, frame)
                scheduler.run(until=target)
                outbound = []
                for channel in out_channels:
                    for fire_time, seq, frame in channel.drain():
                        outbound.append(
                            (fire_time, channel.key, seq, frame,
                             channel.dst))
                conn.send(("out",
                           encode_frame_batch(outbound) if outbound else b"",
                           _worker_bounds(fed)))
            elif kind == "checkpoint":
                for system in fed.clusters:
                    if system.config.publishing:
                        system.checkpoint_all()
                conn.send(("ok", _worker_bounds(fed)))
            elif kind == "spawn":
                spawn_workload(fed, scenario)
                conn.send(("ok", _worker_bounds(fed)))
            elif kind == "collect":
                conn.send(("result", collect_local(fed, scenario)))
            elif kind == "exit":
                return
            else:   # pragma: no cover - protocol error
                raise ReproError(f"unknown pool command {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:   # pragma: no cover - parent already gone
            pass
        raise
    finally:
        conn.close()


class _PoolMaster:
    """The parent half of the pooled promise protocol.

    Knows the complete abstract channel graph — cross-worker gateway
    edges (where frames are exchanged) plus worker-internal relaxation
    edges (the zero-lookahead recorder bridges) — derived from the
    scenario alone, without building a single cluster. Each round it
    relaxes the workers' reported next-event bounds over that graph
    (mirroring :meth:`PartitionedEngine.earliest_bounds`), grants every
    worker the largest provably-safe advance target, and routes drained
    frames. Interpacket spacing floors are local knowledge the workers
    apply themselves; ignoring them here only *lowers* bounds, which is
    always conservative-safe.
    """

    def __init__(self, scenario: DesScenario, partitions: int):
        self.scenario = scenario
        self.partitions = partitions
        count = scenario.clusters
        delays = scenario.forward_delay_map()

        def lp_of(index: int) -> int:
            return index * partitions // count

        #: every relaxation edge as (src_lp, dst_lp, lookahead_ms)
        self.edges: List[Tuple[int, int, float]] = []
        cross: List[Tuple[int, int, float]] = []
        lps = set(range(partitions))
        for _gid, src, dst in directed_gateways(count, scenario.topology):
            src_lp, dst_lp = lp_of(src), lp_of(dst)
            if src_lp == dst_lp:
                continue
            delay = delays.get((src, dst), scenario.forward_delay_ms)
            cross.append((src_lp, dst_lp, delay))
            self.edges.append((src_lp, dst_lp, delay))
        if scenario.recorder_lps:
            for index in range(count):
                medium, recorder = lp_of(index), partitions + index
                lps.add(recorder)
                self.edges.append((medium, recorder, 0.0))
                self.edges.append((recorder, medium, 0.0))
        #: LP -> owning worker (recorder LPs live with their medium)
        self.worker_of: Dict[int, int] = {
            lp: (lp if lp < partitions else lp_of(lp - partitions))
            for lp in lps}
        #: per-worker incoming cross edges: worker -> [(src_lp, L)]
        self.incoming: Dict[int, List[Tuple[int, float]]] = {
            w: [] for w in range(partitions)}
        for src_lp, dst_lp, delay in cross:
            self.incoming[dst_lp].append((src_lp, delay))
        self.window_ms = min((e[2] for e in cross), default=None)
        #: latest reported next-event bound per LP (inf = idle)
        self.bounds: Dict[int, float] = {lp: 0.0 for lp in lps}
        #: last granted target per worker
        self.granted: Dict[int, float] = {w: 0.0 for w in range(partitions)}
        #: frames routed to a worker but not yet shipped
        self.pending: Dict[int, List[Tuple]] = {
            w: [] for w in range(partitions)}

    def note_bounds(self, reply_bounds: Dict[int, Optional[float]]) -> None:
        for lp, bound in reply_bounds.items():
            self.bounds[lp] = math.inf if bound is None else bound

    def relaxed_bounds(self) -> Dict[int, float]:
        """Bellman-Ford fixed point of ``bound[dst] <= bound[src] + L``
        over reported bounds and not-yet-shipped frame fire times."""
        node = dict(self.bounds)
        for items in self.pending.values():
            for fire_time, _key, _seq, _frame, dst_lp in items:
                if fire_time < node[dst_lp]:
                    node[dst_lp] = fire_time
        for _ in range(len(node)):
            changed = False
            for src_lp, dst_lp, delay in self.edges:
                bound = node[src_lp] + delay
                if bound < node[dst_lp]:
                    node[dst_lp] = bound
                    changed = True
            if not changed:
                break
        return node

    def targets(self, until: float) -> Dict[int, float]:
        """The largest provably-safe advance target per worker
        (nondecreasing; the worker owning the globally-earliest bound
        always makes strict progress because every cross lookahead is
        strictly positive)."""
        if self.scenario.lockstep:
            now = min(self.granted.values())
            step = (until if self.window_ms is None
                    else min(until, now + self.window_ms))
            return {w: max(step, self.granted[w]) for w in self.granted}
        node = self.relaxed_bounds()
        out: Dict[int, float] = {}
        batch_ms = self.scenario.batch_ms
        for worker, edges in self.incoming.items():
            target = until
            for src_lp, delay in edges:
                bound = node[src_lp] + delay
                if bound < target:
                    target = bound
            if batch_ms is not None:
                cap = self.granted[worker] + batch_ms
                if cap < target:
                    target = cap
            out[worker] = max(target, self.granted[worker])
        return out

    def route(self, drained: List[Tuple]) -> int:
        """Sort one barrier's drained frames globally and queue them
        for their destination workers; a pure function of the message
        set, so injection order never depends on worker timing."""
        drained.sort(key=lambda item: (item[0], item[1], item[2]))
        for item in drained:
            self.pending[self.worker_of[item[4]]].append(item)
        return len(drained)

    def done(self, until: float) -> bool:
        return (all(target >= until for target in self.granted.values())
                and not any(self.pending.values())
                and all(bound > until for bound in self.bounds.values()))


def _pool_recv(pipe, process, shard: int,
               timeout_s: float = POOL_REPLY_TIMEOUT_S):
    """Receive one worker reply, surfacing child death instead of
    blocking forever: polls with a deadline and raises
    :class:`ReproError` carrying the child's traceback (if it managed
    to send one) or its exit code."""
    deadline = time.monotonic() + timeout_s

    def take():
        reply = pipe.recv()
        if reply[0] == "error":
            raise ReproError(
                f"DES pool worker {shard} failed:\n{reply[1]}")
        return reply

    while True:
        try:
            if pipe.poll(0.05):
                return take()
        except (EOFError, OSError):
            raise ReproError(
                f"DES pool worker {shard} closed its pipe unexpectedly "
                f"(exit code {process.exitcode})")
        if not process.is_alive():
            # Drain a final message the child flushed before dying.
            try:
                if pipe.poll(0):
                    return take()
            except (EOFError, OSError):
                pass
            raise ReproError(
                f"DES pool worker {shard} died without replying "
                f"(exit code {process.exitcode})")
        if time.monotonic() > deadline:
            raise ReproError(
                f"DES pool worker {shard} did not reply within "
                f"{timeout_s:.0f}s")


def run_pooled(scenario: DesScenario, workers: int) -> Dict[str, Any]:
    """One OS process per LP group, the parent granting safe targets.

    Each round the parent relaxes the workers' reported next-event
    bounds over the channel graph, grants every worker the largest
    provably-safe target (so quiet stretches fast-forward in a handful
    of barriers instead of one per lookahead window), ships each worker
    its routed frames as one compact wire-format batch, and gathers
    what the workers' taps claimed. With ``scenario.lockstep`` the
    parent instead steps fixed global-minimum windows — the historical
    protocol, kept as the measured baseline.
    """
    scenario.validate()
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    partitions = min(workers, scenario.clusters)
    started = time.perf_counter()
    ctx = _mp_context()
    master = _PoolMaster(scenario, partitions)
    pipes = []
    processes = []
    barriers = 0
    messages_exchanged = 0
    try:
        for shard in range(partitions):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_pool_worker,
                args=(child_conn, scenario, partitions, shard), daemon=True)
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)

        def broadcast(command):
            for pipe in pipes:
                pipe.send(command)
            replies = [_pool_recv(pipe, process, shard)
                       for shard, (pipe, process)
                       in enumerate(zip(pipes, processes))]
            for reply in replies:
                if reply[0] == "ok":
                    master.note_bounds(reply[1])
            return replies

        def advance(duration: float) -> None:
            nonlocal barriers, messages_exchanged
            until = min(master.granted.values()) + duration
            while True:
                targets = master.targets(until)
                for shard, pipe in enumerate(pipes):
                    batch = master.pending[shard]
                    master.pending[shard] = []
                    pipe.send(("advance", targets[shard],
                               encode_frame_batch(batch) if batch else b""))
                master.granted = targets
                drained: List[Tuple] = []
                for shard, (pipe, process) in enumerate(
                        zip(pipes, processes)):
                    tag, blob, bounds = _pool_recv(pipe, process, shard)
                    if tag != "out":   # pragma: no cover - protocol error
                        raise ReproError(f"unexpected worker reply {tag!r}")
                    if blob:
                        drained.extend(decode_frame_batch(blob))
                    master.note_bounds(bounds)
                barriers += 1
                moved = master.route(drained)
                messages_exchanged += moved
                if moved:
                    continue
                if master.done(until):
                    break

        broadcast(("boot",))
        advance(scenario.settle_ms)
        broadcast(("checkpoint",))
        broadcast(("spawn",))
        advance(scenario.duration_ms)
        parts = [reply[1] for reply in broadcast(("collect",))]
        for pipe in pipes:
            pipe.send(("exit",))
    finally:
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():   # pragma: no cover - hung worker
                process.terminate()
        for pipe in pipes:
            pipe.close()

    result = _merge_collected(parts, scenario)
    result.update({
        "mode": "pooled",
        "partitions": partitions,
        "workers": workers,
        "clusters": scenario.clusters,
        "sim_ms": scenario.settle_ms + scenario.duration_ms,
        "wall_ms": (time.perf_counter() - started) * 1000.0,
        "barriers": barriers,
        "messages_exchanged": messages_exchanged,
    })
    return result


# ----------------------------------------------------------------------
# equivalence reports
# ----------------------------------------------------------------------
def equivalence_report(scenario: DesScenario,
                       worker_counts: Sequence[int] = (1, 2),
                       include_staged: bool = True,
                       include_pooled: bool = True) -> Dict[str, Any]:
    """Run the scenario serially and partitioned, and compare digests.

    Returns a report with every run's summary, the reference digest,
    and ``equivalent`` — True iff every mode produced byte-identical
    per-cluster digests and a correct workload outcome.
    """
    runs = [run_serial(scenario)]
    if include_staged:
        for count in worker_counts:
            runs.append(run_staged(scenario, partitions=count))
    if include_pooled:
        for count in worker_counts:
            runs.append(run_pooled(scenario, workers=count))
    reference = runs[0]["digest"]
    mismatches = [
        {"mode": run["mode"], "partitions": run["partitions"],
         "digest": run["digest"]}
        for run in runs if run["digest"] != reference]
    equivalent = not mismatches and all(run["workload_ok"] for run in runs)
    return {
        "scenario": {
            "clusters": scenario.clusters,
            "cluster_size": scenario.cluster_size,
            "recorder_shards": scenario.recorder_shards,
            "messages": scenario.messages,
            "duration_ms": scenario.duration_ms,
            "topology": scenario.topology,
            "forward_delay_ms": scenario.forward_delay_ms,
            "forward_delays": [[list(edge), delay] for edge, delay
                               in (scenario.forward_delays or ())],
            "recorder_lps": scenario.recorder_lps,
            "lockstep": scenario.lockstep,
            "batch_ms": scenario.batch_ms,
            "master_seed": scenario.master_seed,
        },
        "reference_digest": reference,
        "equivalent": equivalent,
        "mismatches": mismatches,
        "runs": runs,
    }
