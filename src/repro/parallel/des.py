"""Conservative parallel DES over cluster federations.

A federation's gateways are its only cross-cluster edges, and every
gateway imposes a fixed, positive ``forward_delay_ms`` before a claimed
frame re-enters the world on the far medium. That delay is exactly the
*lookahead* a conservative parallel discrete-event simulation needs:
if every logical process (LP) advances at most ``L = forward_delay_ms``
beyond the last barrier, a frame claimed anywhere in the window fires
strictly *after* the window's end — so exchanging claimed frames at
window barriers can never deliver an event into an LP's past, and the
partitioned run replays the serial event order byte-for-byte (see
``docs/PARALLEL_DES.md``).

Three execution modes over one scenario:

* :func:`run_serial` — the reference: every cluster on one engine.
* :func:`run_staged` — one engine per LP in a single process, driven by
  :class:`~repro.sim.engine.PartitionedEngine`. No parallelism, but it
  exercises the exact window/barrier protocol; its digests must equal
  the serial run's.
* :func:`run_pooled` — one OS process per LP. Each worker
  deterministically rebuilds its shard (``ClusterFederation(...,
  partitions=P, only_partition=k)`` — the same wiring code as staged
  mode), and the parent drives lookahead windows over pipes, routing
  the frames drained from each worker's outgoing channels into the
  destination worker's next advance. Digests must again be identical.

The per-cluster digest covers the full trace-event stream and metrics
snapshot, so "byte-identical" means every layer of every cluster saw
the same events at the same simulated times in the same order.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.workload import (
    CHAOS_COUNTER_IMAGE,
    CHAOS_DRIVER_IMAGE,
    ChaosCounter,
    ChaosDriver,
    expected_total,
    register_chaos_programs,
)
from repro.cluster.gateways import ClusterFederation
from repro.errors import ReproError
from repro.parallel.runner import _mp_context, canonical_json
from repro.system import System, SystemConfig

#: Metrics that legitimately differ between one-engine and N-engine
#: execution of the *same* events: each System's ``sim.events_fired``
#: gauge reads its (possibly shared) engine's global event counter.
DES_VOLATILE_METRICS = frozenset({"sim.events_fired"})


@dataclass(frozen=True)
class DesScenario:
    """One reproducible federation workload, identical in every mode.

    Each cluster runs a :class:`~repro.chaos.workload.ChaosCounter` and
    a :class:`~repro.chaos.workload.ChaosDriver` targeting the *next*
    cluster's counter, so every add/total round trip crosses two
    gateways. Driver start times are staggered per cluster
    (``stagger_ms``) so distinct channels never collide on exact event
    timestamps.
    """

    clusters: int = 4
    cluster_size: int = 1
    messages: int = 6
    duration_ms: float = 3000.0
    settle_ms: float = 500.0
    stagger_ms: float = 7.3
    topology: str = "ring"
    forward_delay_ms: float = 5.0
    master_seed: int = 1983

    def validate(self) -> None:
        if self.clusters < 2:
            raise ReproError("a DES scenario needs at least 2 clusters")
        if self.forward_delay_ms <= 0:
            raise ReproError("forward_delay_ms must be positive (lookahead)")


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def cluster_digest(system: System) -> str:
    """SHA-256 over one cluster's full event stream + metrics snapshot
    (minus :data:`DES_VOLATILE_METRICS`)."""
    snapshot = {key: value for key, value in system.metrics_snapshot().items()
                if key not in DES_VOLATILE_METRICS}
    blob = system.obs.bus.to_jsonl() + "\n" + canonical_json(snapshot)
    return hashlib.sha256(blob.encode()).hexdigest()


def federation_digest(per_cluster: Dict[int, str]) -> str:
    """One digest over all per-cluster digests, order-independent."""
    canon = canonical_json({str(k): per_cluster[k]
                            for k in sorted(per_cluster)})
    return hashlib.sha256(canon.encode()).hexdigest()


# ----------------------------------------------------------------------
# scenario construction (shared by every mode and every pool worker)
# ----------------------------------------------------------------------
def build_federation(scenario: DesScenario,
                     partitions: Optional[int] = None,
                     only_partition: Optional[int] = None) -> ClusterFederation:
    scenario.validate()
    configs = [SystemConfig(nodes=scenario.cluster_size,
                            master_seed=scenario.master_seed)
               for _ in range(scenario.clusters)]
    fed = ClusterFederation(
        [scenario.cluster_size] * scenario.clusters,
        forward_delay_ms=scenario.forward_delay_ms,
        topology=scenario.topology,
        configs=configs,
        partitions=partitions,
        only_partition=only_partition)
    for system in fed.clusters:
        register_chaos_programs(system)
    return fed


def _spawn_driver(system: System, target: Tuple[int, int],
                  messages: int) -> None:
    system.spawn_program(CHAOS_DRIVER_IMAGE, args=(target, messages),
                         node=system.config.first_node_id)


def spawn_workload(fed: ClusterFederation, scenario: DesScenario) -> None:
    """Spawn the ring workload on every *local* cluster.

    Counters are spawned synchronously (engines idle at the settle
    barrier) in ascending cluster order; every cluster boots through
    the identical sequence, so the counter's local pid component is the
    same on all of them — which is how a pool worker knows the pid of a
    counter it never built. Drivers are then scheduled as staggered
    engine events, so their timestamps are identical in every mode.
    """
    counter_local: Optional[int] = None
    for index in sorted(fed.systems):
        system = fed.systems[index]
        pid = system.spawn_program(CHAOS_COUNTER_IMAGE,
                                   node=system.config.first_node_id)
        if counter_local is None:
            counter_local = pid.local
        elif pid.local != counter_local:
            raise ReproError(
                f"counter local ids diverged: {pid.local} != {counter_local}")
    for index in sorted(fed.systems):
        system = fed.systems[index]
        target_cluster = (index + 1) % scenario.clusters
        target = (fed.configs[target_cluster].first_node_id, counter_local)
        delay = 1.0 + scenario.stagger_ms * index
        system.engine.schedule(delay, _spawn_driver, system, target,
                               scenario.messages)


def _programs_of(system: System, cls) -> List[Any]:
    out = []
    for node_id in sorted(system.nodes):
        kernel = system.nodes[node_id].kernel
        for pid in sorted(kernel.processes):
            program = kernel.processes[pid].program
            if isinstance(program, cls):
                out.append(program)
    return out


def collect_local(fed: ClusterFederation,
                  scenario: DesScenario) -> Dict[str, Any]:
    """Digest + workload summary for every cluster this federation
    (or slice) owns. Pure data — safe to send over a pipe."""
    per_cluster: Dict[int, str] = {}
    replies: Dict[int, int] = {}
    totals: Dict[int, int] = {}
    for index, system in sorted(fed.systems.items()):
        per_cluster[index] = cluster_digest(system)
        drivers = _programs_of(system, ChaosDriver)
        counters = _programs_of(system, ChaosCounter)
        replies[index] = len(drivers[0].replies) if drivers else 0
        totals[index] = counters[0].total if counters else 0
    return {
        "per_cluster": per_cluster,
        "replies": replies,
        "totals": totals,
        "frames_forwarded": sum(g.frames_forwarded for g in fed.gateways),
        "frames_dropped": sum(g.frames_dropped for g in fed.gateways),
        "gateway_retries": sum(g.retries for g in fed.gateways),
        "dead_letters": len(fed.dead_letters),
    }


def _merge_collected(parts: Sequence[Dict[str, Any]],
                     scenario: DesScenario) -> Dict[str, Any]:
    per_cluster: Dict[int, str] = {}
    replies: Dict[int, int] = {}
    totals: Dict[int, int] = {}
    counters = {"frames_forwarded": 0, "frames_dropped": 0,
                "gateway_retries": 0, "dead_letters": 0}
    for part in parts:
        per_cluster.update(part["per_cluster"])
        replies.update(part["replies"])
        totals.update(part["totals"])
        for key in counters:
            counters[key] += part[key]
    expected = expected_total(scenario.messages)
    ok = (len(per_cluster) == scenario.clusters
          and all(replies.get(i) == scenario.messages
                  for i in range(scenario.clusters))
          and all(totals.get(i) == expected
                  for i in range(scenario.clusters)))
    return {
        "digest": federation_digest(per_cluster),
        "per_cluster": {str(k): per_cluster[k] for k in sorted(per_cluster)},
        "replies": [replies.get(i, 0) for i in range(scenario.clusters)],
        "totals": [totals.get(i, 0) for i in range(scenario.clusters)],
        "expected_total": expected,
        "workload_ok": ok,
        **counters,
    }


# ----------------------------------------------------------------------
# in-process modes
# ----------------------------------------------------------------------
def _run_inprocess(scenario: DesScenario,
                   partitions: Optional[int]) -> Dict[str, Any]:
    started = time.perf_counter()
    fed = build_federation(scenario, partitions=partitions)
    fed.boot(settle_ms=scenario.settle_ms)
    spawn_workload(fed, scenario)
    fed.run(scenario.duration_ms)
    result = _merge_collected([collect_local(fed, scenario)], scenario)
    result.update({
        "mode": "serial" if partitions is None else "staged",
        "partitions": partitions or 0,
        "clusters": scenario.clusters,
        "sim_ms": scenario.settle_ms + scenario.duration_ms,
        "wall_ms": (time.perf_counter() - started) * 1000.0,
        "barriers": fed.scheduler.barriers if fed.scheduler else 0,
        "messages_exchanged": (fed.scheduler.messages_exchanged
                               if fed.scheduler else 0),
    })
    return result


def run_serial(scenario: DesScenario) -> Dict[str, Any]:
    """The reference execution: one engine, no windows."""
    return _run_inprocess(scenario, partitions=None)


def run_staged(scenario: DesScenario, partitions: int) -> Dict[str, Any]:
    """One engine per LP, windowed barrier sync, single process."""
    return _run_inprocess(scenario, partitions=partitions)


# ----------------------------------------------------------------------
# process-pool mode
# ----------------------------------------------------------------------
def _pool_worker(conn, scenario: DesScenario, partitions: int,
                 shard: int) -> None:
    """One LP in its own process: rebuild the shard, then follow the
    parent's window protocol over the pipe."""
    fed = build_federation(scenario, partitions=partitions,
                           only_partition=shard)
    in_channels = {channel.key: channel for channel in fed.channels
                   if channel.dst in fed.engines}
    out_channels = [channel for channel in fed.channels
                    if channel.src in fed.engines]
    try:
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "boot":
                for system in fed.clusters:
                    system.boot(settle_ms=0.0)
                conn.send(("ok",))
            elif kind == "advance":
                _, target, inbound = command
                # inbound arrives pre-sorted by (fire_time, key, seq) —
                # the same order PartitionedEngine._exchange injects in
                for fire_time, key, _seq, frame in inbound:
                    channel = in_channels[key]
                    fed.engines[channel.dst].schedule_abs(
                        fire_time, channel.deliver, frame)
                for lp in sorted(fed.engines):
                    fed.engines[lp].run(until=target)
                outbound = []
                for channel in out_channels:
                    for fire_time, seq, frame in channel.drain():
                        outbound.append(
                            (fire_time, channel.key, seq, frame, channel.dst))
                conn.send(("out", outbound))
            elif kind == "checkpoint":
                for system in fed.clusters:
                    if system.config.publishing:
                        system.checkpoint_all()
                conn.send(("ok",))
            elif kind == "spawn":
                spawn_workload(fed, scenario)
                conn.send(("ok",))
            elif kind == "collect":
                conn.send(("result", collect_local(fed, scenario)))
            elif kind == "exit":
                return
            else:   # pragma: no cover - protocol error
                raise ReproError(f"unknown pool command {kind!r}")
    finally:
        conn.close()


def run_pooled(scenario: DesScenario, workers: int) -> Dict[str, Any]:
    """One OS process per LP, the parent driving lookahead windows.

    Each round the parent tells every worker to advance to the next
    window barrier (handing it the frames routed to it at the previous
    barrier), then gathers what each worker's taps claimed. Frames are
    routed by channel destination and globally sorted by
    ``(fire_time, channel key, channel seq)`` — a pure function of the
    message set, so injection order never depends on worker timing.
    """
    scenario.validate()
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    partitions = min(workers, scenario.clusters)
    started = time.perf_counter()
    ctx = _mp_context()
    pipes = []
    processes = []
    try:
        for shard in range(partitions):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_pool_worker,
                args=(child_conn, scenario, partitions, shard), daemon=True)
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)

        def broadcast(command):
            for pipe in pipes:
                pipe.send(command)
            return [pipe.recv() for pipe in pipes]

        now = 0.0
        barriers = 0
        messages_exchanged = 0
        window = scenario.forward_delay_ms
        pending: Dict[int, List[Tuple]] = {s: [] for s in range(partitions)}

        def advance(duration: float) -> None:
            nonlocal now, barriers, messages_exchanged
            until = now + duration
            while now < until:
                target = min(until, now + window)
                for shard, pipe in enumerate(pipes):
                    pipe.send(("advance", target, pending[shard]))
                    pending[shard] = []
                drained = []
                for pipe in pipes:
                    tag, outbound = pipe.recv()
                    if tag != "out":   # pragma: no cover - protocol error
                        raise ReproError(f"unexpected worker reply {tag!r}")
                    drained.extend(outbound)
                drained.sort(key=lambda m: (m[0], m[1], m[2]))
                for fire_time, key, seq, frame, dst in drained:
                    pending[dst].append((fire_time, key, seq, frame))
                messages_exchanged += len(drained)
                barriers += 1
                now = target

        broadcast(("boot",))
        advance(scenario.settle_ms)
        broadcast(("checkpoint",))
        broadcast(("spawn",))
        advance(scenario.duration_ms)
        parts = [reply[1] for reply in broadcast(("collect",))]
        for pipe in pipes:
            pipe.send(("exit",))
    finally:
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():   # pragma: no cover - hung worker
                process.terminate()
        for pipe in pipes:
            pipe.close()

    result = _merge_collected(parts, scenario)
    result.update({
        "mode": "pooled",
        "partitions": partitions,
        "workers": workers,
        "clusters": scenario.clusters,
        "sim_ms": scenario.settle_ms + scenario.duration_ms,
        "wall_ms": (time.perf_counter() - started) * 1000.0,
        "barriers": barriers,
        "messages_exchanged": messages_exchanged,
    })
    return result


# ----------------------------------------------------------------------
# equivalence reports
# ----------------------------------------------------------------------
def equivalence_report(scenario: DesScenario,
                       worker_counts: Sequence[int] = (1, 2),
                       include_staged: bool = True,
                       include_pooled: bool = True) -> Dict[str, Any]:
    """Run the scenario serially and partitioned, and compare digests.

    Returns a report with every run's summary, the reference digest,
    and ``equivalent`` — True iff every mode produced byte-identical
    per-cluster digests and a correct workload outcome.
    """
    runs = [run_serial(scenario)]
    if include_staged:
        for count in worker_counts:
            runs.append(run_staged(scenario, partitions=count))
    if include_pooled:
        for count in worker_counts:
            runs.append(run_pooled(scenario, workers=count))
    reference = runs[0]["digest"]
    mismatches = [
        {"mode": run["mode"], "partitions": run["partitions"],
         "digest": run["digest"]}
        for run in runs if run["digest"] != reference]
    equivalent = not mismatches and all(run["workload_ok"] for run in runs)
    return {
        "scenario": {
            "clusters": scenario.clusters,
            "cluster_size": scenario.cluster_size,
            "messages": scenario.messages,
            "duration_ms": scenario.duration_ms,
            "topology": scenario.topology,
            "forward_delay_ms": scenario.forward_delay_ms,
            "master_seed": scenario.master_seed,
        },
        "reference_digest": reference,
        "equivalent": equivalent,
        "mismatches": mismatches,
        "runs": runs,
    }
