"""Process-pool sharded execution of independent deterministic runs.

The evaluation sweeps — chaos seed matrices, queueing capacity and
utilization grids, perf-suite repetitions — are embarrassingly parallel:
every shard is a pure function of its parameters (and, where it draws
randomness, of a seed derived from the sweep's root seed by *name*, via
:func:`repro.sim.rng.derive_seed`). This module schedules those shards
over a pool of worker processes and merges the results back in task
order, with a content digest per shard so serial and parallel execution
can be proven byte-identical.

Determinism contract:

* a shard's seed is ``derive_seed(root_seed, shard_name)`` — a function
  of the *name*, never of scheduling order or worker identity;
* shards never share mutable state (each builds its own ``System``);
* results are merged in submission order, regardless of completion
  order;
* every shard carries ``digest`` — SHA-256 over its canonical JSON
  (kind, name, params, deterministic payload; wall-clock timing is
  excluded) — and the merged report carries the digest chain, so
  ``run_tasks(tasks, max_workers=1)`` and ``run_tasks(tasks, N)`` must
  agree digest-for-digest.

Scheduling: tasks are grouped into chunks (default ~4 chunks per
worker) and the chunks are fed to a warm pool — each worker process is
created once and serves many chunks, so per-process startup cost is
paid ``max_workers`` times, not ``len(tasks)`` times.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.sim.rng import derive_seed


def shard_seed(root_seed: int, name: str) -> int:
    """The master seed shard ``name`` uses in a sweep rooted at
    ``root_seed`` — ``derive_seed`` under a fixed ``sweep/`` prefix."""
    return derive_seed(root_seed, f"sweep/{name}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def digest_of(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@dataclass(frozen=True)
class ShardTask:
    """One unit of sweep work: a registered task kind plus parameters.

    ``name`` must be unique within a sweep — it orders the merge and
    (for seeded kinds) pins the shard's seed.
    """

    kind: str
    name: str
    #: sorted (key, value) pairs — hashable, picklable, order-stable
    params: Tuple[Tuple[str, Any], ...]


def make_task(kind: str, name: str, **params: Any) -> ShardTask:
    return ShardTask(kind=kind, name=name,
                     params=tuple(sorted(params.items())))


def execute_task(task: ShardTask) -> Dict[str, Any]:
    """Run one shard in the current process; returns the shard record.

    The record's ``digest`` covers only the deterministic facts; the
    executor's wall-clock figures ride in ``timing`` outside it.
    """
    from repro.parallel.tasks import TASK_KINDS

    fn = TASK_KINDS.get(task.kind)
    if fn is None:
        raise ReproError(f"unknown shard kind {task.kind!r} "
                         f"(known: {', '.join(sorted(TASK_KINDS))})")
    params = dict(task.params)
    payload, timing = fn(params)
    shard: Dict[str, Any] = {
        "kind": task.kind,
        "name": task.name,
        "params": params,
        "payload": payload,
    }
    shard["digest"] = digest_of(shard)
    shard["timing"] = timing
    return shard


def _execute_chunk(chunk: List[Tuple[int, ShardTask]]
                   ) -> List[Tuple[int, Dict[str, Any]]]:
    """Worker entry point: run one chunk, keep the submission indices."""
    return [(index, execute_task(task)) for index, task in chunk]


def resolve_workers(max_workers: Optional[int]) -> int:
    """``None`` means one worker per core."""
    if max_workers is None:
        return os.cpu_count() or 1
    if max_workers < 1:
        raise ReproError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_tasks(tasks: Iterable[ShardTask],
              max_workers: Optional[int] = None,
              chunk_size: Optional[int] = None) -> List[Dict[str, Any]]:
    """Execute every task and return shard records in task order.

    ``max_workers=None`` defaults to ``os.cpu_count()``; 1 (or a single
    task) runs serially in-process — the reference execution the digest
    check compares against. Chunks default to ~4 per worker so warm
    workers get several servings and stragglers rebalance.
    """
    tasks = list(tasks)
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ReproError(f"shard names must be unique, repeated: {dupes}")
    workers = min(resolve_workers(max_workers), max(len(tasks), 1))
    if workers <= 1 or len(tasks) <= 1:
        return [execute_task(task) for task in tasks]

    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(tasks) / (workers * 4)))
    indexed = list(enumerate(tasks))
    chunks = [indexed[i:i + chunk_size]
              for i in range(0, len(indexed), chunk_size)]
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_mp_context()) as pool:
        futures = [pool.submit(_execute_chunk, chunk) for chunk in chunks]
        for future in as_completed(futures):
            for index, shard in future.result():
                results[index] = shard
    missing = [tasks[i].name for i, r in enumerate(results) if r is None]
    if missing:
        raise ReproError(f"shards never completed: {missing}")
    return results  # type: ignore[return-value]


def sweep_digest(shards: Sequence[Dict[str, Any]]) -> str:
    """Digest of the whole sweep: the ordered chain of shard digests."""
    joined = "\n".join(shard["digest"] for shard in shards)
    return hashlib.sha256(joined.encode()).hexdigest()


def merge_results(shards: Sequence[Dict[str, Any]],
                  **meta: Any) -> Dict[str, Any]:
    """The merged sweep report: deterministic apart from ``timing``."""
    merged: Dict[str, Any] = {
        "count": len(shards),
        "digest": sweep_digest(shards),
        "shards": list(shards),
    }
    for key in sorted(meta):
        merged[key] = meta[key]
    return merged


def strip_timing(merged: Dict[str, Any]) -> Dict[str, Any]:
    """The merged report minus wall-clock noise — the part that must be
    identical between serial and parallel execution."""
    out = {k: v for k, v in merged.items() if k != "shards"}
    out["shards"] = [{k: v for k, v in shard.items() if k != "timing"}
                     for shard in merged["shards"]]
    return out


def verify_parallel(tasks: Sequence[ShardTask],
                    max_workers: Optional[int] = None,
                    chunk_size: Optional[int] = None
                    ) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Run ``tasks`` on the pool *and* serially; return the parallel
    shards plus a list of digest mismatches (empty == proven equal)."""
    parallel = run_tasks(tasks, max_workers=max_workers,
                         chunk_size=chunk_size)
    serial = run_tasks(tasks, max_workers=1)
    mismatches = [
        f"{p['name']}: parallel {p['digest'][:12]} != "
        f"serial {s['digest'][:12]}"
        for p, s in zip(parallel, serial) if p["digest"] != s["digest"]
    ]
    if sweep_digest(parallel) != sweep_digest(serial) and not mismatches:
        mismatches.append("sweep digest chain diverged (ordering)")
    return parallel, mismatches
