"""Shard executors: what one worker does for each task kind.

Every executor is a module-level function (picklable by reference for
``spawn`` pools) taking the task's parameter dict and returning
``(payload, timing)``: ``payload`` is the deterministic result covered
by the shard digest, ``timing`` carries wall-clock figures excluded
from it. Heavy imports happen inside the executors so a worker only
pays for the subsystems its shards actually touch.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Dict, Tuple

_Result = Tuple[Dict[str, Any], Dict[str, Any]]


def run_chaos_shard(params: Dict[str, Any]) -> _Result:
    """One seeded chaos scenario: monkey (default) or an explicit
    campaign spec dict, run against the counter/driver workload."""
    from repro.chaos import load_campaign, monkey_campaign, run_scenario
    from repro.sim.rng import RngStreams

    seed = params["seed"]
    nodes = params.get("nodes", 3)
    spec = params.get("campaign")
    if spec is not None:
        campaign = load_campaign(spec)
    else:
        campaign = monkey_campaign(
            RngStreams(seed), list(range(1, nodes + 1)),
            duration_ms=params.get("duration_ms", 4000.0))
    start = time.perf_counter()
    result = run_scenario(
        campaign, nodes=nodes,
        pairs=params.get("pairs", 2),
        messages=params.get("messages", 20),
        master_seed=seed,
        medium=params.get("medium", "broadcast"),
        settle_ms=params.get("settle_ms", 6000.0))
    wall_ms = (time.perf_counter() - start) * 1000.0
    payload = {
        "ok": result.ok,
        "totals": result.totals,
        "expected": result.expected,
        "report": result.report.to_dict(),
        "events_fired": result.system.engine.events_fired,
        "sim_ms": round(result.system.engine.now, 6),
        "event_digest": hashlib.sha256(
            result.event_stream().encode()).hexdigest(),
    }
    return payload, {"wall_ms": round(wall_ms, 3)}


def run_capacity_shard(params: Dict[str, Any]) -> _Result:
    """One §5.1 capacity probe: max users for an operating point."""
    from repro.queueing import OPERATING_POINTS, capacity_in_users
    from repro.queueing.capacity import bottleneck

    point = OPERATING_POINTS[params["point"]]
    disks = params.get("disks", 1)
    buffered = params.get("buffered", True)
    start = time.perf_counter()
    users = capacity_in_users(point, disks=disks, buffered=buffered)
    payload = {
        "point": params["point"],
        "users": users,
        "nodes": round(users / point.users_per_node, 6),
        "bottleneck": bottleneck(point, users, disks=disks,
                                 buffered=buffered),
    }
    wall_ms = (time.perf_counter() - start) * 1000.0
    return payload, {"wall_ms": round(wall_ms, 3)}


def run_utilization_shard(params: Dict[str, Any]) -> _Result:
    """One Figure 5.5 grid cell: station utilizations at a
    (point, disks, nodes) configuration."""
    from repro.queueing import OPERATING_POINTS, OpenQueueingModel

    point = OPERATING_POINTS[params["point"]]
    model = OpenQueueingModel(point=point, nodes=params["nodes"],
                              disks=params["disks"])
    payload = {
        "point": params["point"],
        "nodes": params["nodes"],
        "disks": params["disks"],
        "utilizations": {k: round(v, 9)
                         for k, v in model.utilizations().items()},
        "stable": model.stable(),
    }
    return payload, {}


def run_figure57_shard(params: Dict[str, Any]) -> _Result:
    """One Figure 5.7 measurement (with or without publishing). All
    figures are simulated time, so the payload is fully deterministic."""
    from repro.metrics import measure_send_to_self

    start = time.perf_counter()
    measured = measure_send_to_self(
        publishing=params["publishing"],
        iterations=params.get("iterations", 256))
    wall_ms = (time.perf_counter() - start) * 1000.0
    payload = {key: round(value, 9) for key, value in measured.items()}
    return payload, {"wall_ms": round(wall_ms, 3)}


def run_federation_shard(params: Dict[str, Any]) -> _Result:
    """One federation cell: a sharded-recorder DES scenario run on the
    single-engine reference path. The payload is the cell's federation
    digest plus its workload outcome, so a sweep over cluster counts is
    digest-gated exactly like the :mod:`repro.parallel.des` modes."""
    from repro.parallel.des import DesScenario, run_serial

    scenario = DesScenario(
        clusters=params["clusters"],
        cluster_size=params.get("cluster_size", 1),
        recorder_shards=params.get("recorder_shards", 1),
        messages=params.get("messages", 6),
        duration_ms=params.get("duration_ms", 3000.0),
        topology=params.get("topology", "ring"),
        forward_delay_ms=params.get("forward_delay_ms", 5.0),
        master_seed=params.get("seed", 1983))
    result = run_serial(scenario)
    payload = {
        "clusters": result["clusters"],
        "topology": scenario.topology,
        "recorder_shards": scenario.recorder_shards,
        "digest": result["digest"],
        "per_cluster": result["per_cluster"],
        "replies": result["replies"],
        "totals": result["totals"],
        "expected_total": result["expected_total"],
        "workload_ok": result["workload_ok"],
        "frames_forwarded": result["frames_forwarded"],
        "dead_letters": result["dead_letters"],
    }
    return payload, {"wall_ms": round(result["wall_ms"], 3)}


#: result keys that vary run-to-run (wall clock and derivatives) — the
#: same set ``tests/test_perf_harness.py`` strips for its determinism
#: check.
PERF_VOLATILE_KEYS = frozenset(
    {"wall_ms", "ops_per_sec", "events_per_sec", "baseline",
     "speedup_vs_baseline", "phases"})


def run_perf_shard(params: Dict[str, Any]) -> _Result:
    """One benchmark workload repetition, split into its deterministic
    facts (digested) and its timing facts (reported, not digested)."""
    from repro.perf.harness import run_workload

    result = run_workload(params["workload"], seed=params.get("seed", 1983),
                          smoke=params.get("smoke", True))
    payload = {k: v for k, v in result.items()
               if k not in PERF_VOLATILE_KEYS}
    timing = {k: v for k, v in result.items() if k in PERF_VOLATILE_KEYS}
    return payload, timing


#: kind -> executor; the registry :func:`repro.parallel.runner.execute_task`
#: dispatches through (rebuilt on import in every worker process).
TASK_KINDS: Dict[str, Callable[[Dict[str, Any]], _Result]] = {
    "chaos": run_chaos_shard,
    "capacity": run_capacity_shard,
    "utilization": run_utilization_shard,
    "figure57": run_figure57_shard,
    "perf": run_perf_shard,
    "federation": run_federation_shard,
}
