"""Sweep builders: whole evaluation matrices as shard task lists.

Each builder turns one evaluation axis of the thesis — the chaos seed
matrix, the §5.1 capacity table, the Figure 5.5 utilization grid, the
Figure 5.7 measurement pair, the perf suite — into a list of
:class:`~repro.parallel.runner.ShardTask`\\ s, and :func:`run_sweep`
drives them through the pool, optionally proving the parallel run
digest-identical to serial execution.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.parallel.runner import (
    ShardTask,
    make_task,
    merge_results,
    run_tasks,
    shard_seed,
    sweep_digest,
)

#: media the chaos matrix accepts, mirroring the CLI
DEFAULT_MEDIUM = "broadcast"


def chaos_matrix_tasks(root_seed: int = 1983, runs: int = 9,
                       nodes: int = 3, pairs: int = 2, messages: int = 20,
                       medium: str = DEFAULT_MEDIUM,
                       duration_ms: float = 4000.0,
                       settle_ms: float = 6000.0,
                       campaign: Optional[Dict[str, Any]] = None,
                       ) -> List[ShardTask]:
    """``runs`` seeded chaos scenarios. Every shard's master seed is
    ``shard_seed(root_seed, name)`` — pure name derivation, so the
    matrix lands on identical seeds however it is scheduled. With a
    ``campaign`` spec dict the same campaign replays under each derived
    seed's workload; without one each shard runs its own monkey."""
    tasks = []
    for k in range(runs):
        name = f"chaos/{k:03d}"
        tasks.append(make_task(
            "chaos", name, seed=shard_seed(root_seed, name), nodes=nodes,
            pairs=pairs, messages=messages, medium=medium,
            duration_ms=duration_ms, settle_ms=settle_ms,
            campaign=campaign))
    return tasks


def capacity_tasks(points: Optional[Iterable[str]] = None,
                   disks: Sequence[int] = (1,),
                   buffered: bool = True) -> List[ShardTask]:
    """One capacity probe per (operating point, disk count)."""
    from repro.queueing import OPERATING_POINTS

    names = sorted(points) if points else sorted(OPERATING_POINTS)
    unknown = [p for p in names if p not in OPERATING_POINTS]
    if unknown:
        raise ReproError(f"unknown operating point(s): {unknown}")
    return [make_task("capacity", f"capacity/{point}/disks{d}",
                      point=point, disks=d, buffered=buffered)
            for point in names for d in disks]


def utilization_tasks(point: str = "mean",
                      disks: Sequence[int] = (1, 2, 3),
                      nodes: Sequence[int] = (1, 2, 3, 4, 5)
                      ) -> List[ShardTask]:
    """The Figure 5.5 grid for one operating point."""
    return [make_task("utilization", f"utilization/{point}/d{d}n{n}",
                      point=point, disks=d, nodes=n)
            for d in disks for n in nodes]


def figure57_tasks(iterations: int = 256) -> List[ShardTask]:
    """The Figure 5.7 pair: with and without publishing."""
    return [make_task("figure57", f"figure57/{label}",
                      publishing=publishing, iterations=iterations)
            for label, publishing in (("publishing", True),
                                      ("bare", False))]


def perf_tasks(names: Optional[Sequence[str]] = None, seed: int = 1983,
               smoke: bool = True) -> List[ShardTask]:
    """One shard per benchmark workload (suite order preserved)."""
    from repro.perf.workloads import WORKLOADS

    chosen = list(names) if names else list(WORKLOADS)
    unknown = [n for n in chosen if n not in WORKLOADS]
    if unknown:
        raise ReproError(f"unknown workload(s): {unknown}")
    return [make_task("perf", f"perf/{name}", workload=name, seed=seed,
                      smoke=smoke)
            for name in chosen]


def federation_tasks(cluster_counts: Sequence[int] = (4, 8, 16),
                     cluster_size: int = 2, recorder_shards: int = 2,
                     topology: str = "ring", messages: int = 4,
                     duration_ms: float = 2500.0,
                     seed: int = 1983) -> List[ShardTask]:
    """One federation cell per cluster count — the scaling axis of the
    ``federation_scaling`` workload, runnable as an ordinary sweep."""
    return [make_task("federation",
                      f"federation/{topology}/c{count:03d}",
                      clusters=count, cluster_size=cluster_size,
                      recorder_shards=recorder_shards, topology=topology,
                      messages=messages, duration_ms=duration_ms,
                      seed=seed)
            for count in sorted(cluster_counts)]


#: sweep kind -> builder(**kwargs) -> tasks
SWEEP_BUILDERS = {
    "chaos": chaos_matrix_tasks,
    "capacity": capacity_tasks,
    "utilization": utilization_tasks,
    "figure57": figure57_tasks,
    "perf": perf_tasks,
    "federation": federation_tasks,
}


def run_sweep(kind: str, max_workers: Optional[int] = None,
              chunk_size: Optional[int] = None, check: bool = False,
              **builder_kwargs: Any) -> Dict[str, Any]:
    """Build and execute one sweep; returns the merged report.

    With ``check=True`` the sweep additionally runs serially and the
    report's ``serial_check`` records whether every shard digest (and
    the ordered digest chain) matched — the CI gate for scheduler
    determinism.
    """
    builder = SWEEP_BUILDERS.get(kind)
    if builder is None:
        raise ReproError(f"unknown sweep kind {kind!r} "
                         f"(known: {', '.join(sorted(SWEEP_BUILDERS))})")
    tasks = builder(**builder_kwargs)
    start = time.perf_counter()
    shards = run_tasks(tasks, max_workers=max_workers,
                       chunk_size=chunk_size)
    wall_ms = (time.perf_counter() - start) * 1000.0
    merged = merge_results(shards, sweep=kind,
                           workers=max_workers, wall_ms=round(wall_ms, 3))
    if check:
        serial_start = time.perf_counter()
        serial = run_tasks(tasks, max_workers=1)
        serial_wall_ms = (time.perf_counter() - serial_start) * 1000.0
        mismatches = [
            f"{p['name']}: parallel {p['digest'][:12]} != "
            f"serial {s['digest'][:12]}"
            for p, s in zip(shards, serial) if p["digest"] != s["digest"]]
        matches = not mismatches and sweep_digest(serial) == merged["digest"]
        merged["serial_check"] = {
            "matches": matches,
            "serial_digest": sweep_digest(serial),
            "mismatches": mismatches,
            "serial_wall_ms": round(serial_wall_ms, 3),
        }
    return merged
