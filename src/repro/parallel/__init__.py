"""repro.parallel — multi-core sharding of independent deterministic runs.

Shard an evaluation sweep (chaos seed matrices, queueing capacity /
utilization / Figure 5.7 grids, perf repetitions) over a process pool
and merge the results deterministically: per-shard seeds are derived
from the root seed by *name* via :func:`repro.sim.rng.derive_seed`, and
every shard carries a content digest so a parallel run can be proven
byte-identical to serial execution. See ``docs/PERFORMANCE.md``.

:mod:`repro.parallel.des` goes one step further: instead of sharding
*independent* runs, it partitions a *single* federation simulation into
one logical process per cluster group, synchronized through gateway
lookahead windows — conservative parallel DES, byte-identical to the
serial engine. See ``docs/PARALLEL_DES.md``.
"""

from repro.parallel.des import (
    DesScenario,
    cluster_digest,
    equivalence_report,
    federation_digest,
    run_pooled,
    run_serial,
    run_staged,
)
from repro.parallel.runner import (
    ShardTask,
    canonical_json,
    digest_of,
    execute_task,
    make_task,
    merge_results,
    resolve_workers,
    run_tasks,
    shard_seed,
    strip_timing,
    sweep_digest,
    verify_parallel,
)
from repro.parallel.sweeps import (
    SWEEP_BUILDERS,
    capacity_tasks,
    chaos_matrix_tasks,
    federation_tasks,
    figure57_tasks,
    perf_tasks,
    run_sweep,
    utilization_tasks,
)
from repro.parallel.tasks import TASK_KINDS

__all__ = [
    "DesScenario",
    "SWEEP_BUILDERS",
    "ShardTask",
    "TASK_KINDS",
    "canonical_json",
    "capacity_tasks",
    "chaos_matrix_tasks",
    "cluster_digest",
    "digest_of",
    "equivalence_report",
    "federation_digest",
    "federation_tasks",
    "run_pooled",
    "run_serial",
    "run_staged",
    "execute_task",
    "figure57_tasks",
    "make_task",
    "merge_results",
    "perf_tasks",
    "resolve_workers",
    "run_sweep",
    "run_tasks",
    "shard_seed",
    "strip_timing",
    "sweep_digest",
    "utilization_tasks",
    "verify_parallel",
]
