"""Measurement programs and meters for the §5.2 experiments.

The Figure 5.6 program, verbatim in spirit::

    startReal := Get_Real_Time;
    startCpu  := Get_Run_Time;
    for i in 1..512 do SendMessageToSelf; ReceiveMessage; od;
    realTime := (Get_Real_Time - startReal) / 512;
    cpuTime  := (Get_Run_Time - startCpu) / 512;

``Get_Run_Time`` "returns the CPU time that the kernel spends outside of
the idle loop" — our :class:`KernelMeter` reads the node CPU's kernel
milliseconds for that, and user milliseconds separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.demos.ids import ProcessId
from repro.demos.kernel import MessageKernel
from repro.demos.process import GeneratorProgram, Program, Recv
from repro.errors import ReproError
from repro.system import System

#: Body size used by the send-to-self measurement. 500 bytes puts the
#: medium transmission time near the thesis's "additional 2 ms".
MEASURE_BODY_BYTES = 500


@dataclass(frozen=True)
class MeterReading:
    """One snapshot of a node's clocks."""

    real_ms: float
    kernel_cpu_ms: float
    user_cpu_ms: float

    def minus(self, earlier: "MeterReading") -> "MeterReading":
        return MeterReading(self.real_ms - earlier.real_ms,
                            self.kernel_cpu_ms - earlier.kernel_cpu_ms,
                            self.user_cpu_ms - earlier.user_cpu_ms)


class KernelMeter:
    """Reads a node's real and CPU clocks (Get_Real_Time / Get_Run_Time).

    Reads go through the node's metrics registry — the same snapshot
    surface every other instrument is published on — rather than poking
    at :class:`~repro.demos.kernel.NodeCpu` attributes directly.
    """

    def __init__(self, kernel: MessageKernel):
        self.kernel = kernel

    def read(self) -> MeterReading:
        kernel = self.kernel
        snapshot = kernel.obs.registry.snapshot()
        prefix = f"kernel.{kernel.node_id}.cpu"
        return MeterReading(real_ms=kernel.engine.now,
                            kernel_cpu_ms=snapshot[f"{prefix}.kernel_ms"],
                            user_cpu_ms=snapshot[f"{prefix}.user_ms"])


class SendToSelfProgram(GeneratorProgram):
    """The Figure 5.6 measurement program."""

    handler_cpu_ms = 1.0   # the thesis's ~1 ms of user time per round

    def __init__(self, iterations: int = 512):
        super().__init__()
        self.iterations = iterations
        self.completed = 0

    def run(self, ctx):
        self_link = ctx.create_link(channel=0, code=0)
        for i in range(self.iterations):
            ctx.send(self_link, ("ping", i), size_bytes=MEASURE_BODY_BYTES)
            yield Recv()
            self.completed += 1


class NullProgram(Program):
    """The §5.2.1 "null process": created and destroyed, does nothing."""

    handler_cpu_ms = 0.1


class CreateDestroyProgram(GeneratorProgram):
    """The Figure 5.8 measurement: create and destroy a null process
    ``iterations`` times through the full PM → MS → kernel-process chain."""

    handler_cpu_ms = 0.5

    def __init__(self, iterations: int = 25):
        super().__init__()
        self.iterations = iterations
        self.completed = 0
        self.failures = 0

    def run(self, ctx):
        # Initial link 1 is the named-link server: find the PM.
        lookup_reply = ctx.create_link(channel=3)
        ctx.send(1, ("lookup", "process_manager"), pass_link_id=lookup_reply)
        answer = yield Recv.on(3)
        pm_link = answer.passed_link_id
        for _ in range(self.iterations):
            reply = ctx.create_link(channel=4)
            ctx.send(pm_link, ("create", "metrics/null", (), None, True, 1),
                     pass_link_id=reply)
            created = yield Recv.on(4)
            if (isinstance(created.body, tuple) and created.body
                    and created.body[0] == "created"
                    and created.passed_link_id is not None):
                ctx.send(created.passed_link_id, ("destroy",))
                ctx.destroy_link(created.passed_link_id)
                self.completed += 1
            else:
                self.failures += 1


def _run_until(system: System, predicate, max_ms: float, step_ms: float = 50.0) -> None:
    deadline = system.engine.now + max_ms
    while system.engine.now < deadline:
        if predicate():
            return
        system.run(step_ms)
    if not predicate():
        raise ReproError("measurement did not complete in time")


def measure_send_to_self(publishing: bool, iterations: int = 512,
                         system: Optional[System] = None) -> Dict[str, float]:
    """Run Figure 5.6 and return per-iteration real and CPU times.

    Reproduces Figure 5.7: ~10 ms real / 9 ms kernel CPU without
    publishing; ~38 ms real / 35 ms kernel CPU with it.
    """
    from repro.system import SystemConfig
    if system is None:
        system = System(SystemConfig(nodes=1, publishing=publishing))
        system.registry.register("metrics/send_to_self", SendToSelfProgram)
        system.boot()
    meter = KernelMeter(system.nodes[1].kernel)
    before = meter.read()
    pid = system.spawn_program("metrics/send_to_self", args=(iterations,), node=1)
    program = system.program_of(pid)
    _run_until(system, lambda: program.completed >= iterations,
               max_ms=iterations * 100.0 + 5000.0)
    delta = meter.read().minus(before)
    return {
        "publishing": float(publishing),
        "iterations": float(iterations),
        "real_ms_per_iter": delta.real_ms / iterations,
        "kernel_cpu_ms_per_iter": delta.kernel_cpu_ms / iterations,
        "user_cpu_ms_per_iter": delta.user_cpu_ms / iterations,
    }


def measure_create_destroy(publishing: bool, iterations: int = 25
                           ) -> Dict[str, float]:
    """Run the Figure 5.8 measurement; returns total and per-iteration
    CPU time on the measured node."""
    from repro.system import SystemConfig
    system = System(SystemConfig(nodes=1, publishing=publishing))
    system.registry.register("metrics/null", NullProgram)
    system.registry.register("metrics/create_destroy", CreateDestroyProgram)
    system.boot()
    meter = KernelMeter(system.nodes[1].kernel)
    before = meter.read()
    pid = system.spawn_program("metrics/create_destroy", args=(iterations,), node=1)
    program = system.program_of(pid)
    _run_until(system, lambda: program.completed + program.failures >= iterations,
               max_ms=iterations * 2000.0 + 10_000.0)
    delta = meter.read().minus(before)
    return {
        "publishing": float(publishing),
        "iterations": float(iterations),
        "completed": float(program.completed),
        "total_kernel_cpu_ms": delta.kernel_cpu_ms,
        "kernel_cpu_ms_per_iter": delta.kernel_cpu_ms / iterations,
    }


def measure_publishing_time(path: str, messages: int = 512) -> Dict[str, object]:
    """§5.2.2: CPU time the recorder spends publishing one message under
    each software path (57 / 12 / 0.8 ms)."""
    from repro.system import SystemConfig
    system = System(SystemConfig(nodes=1, publishing=True, publish_path=path))
    system.registry.register("metrics/send_to_self", SendToSelfProgram)
    system.boot()
    recorder = system.recorder
    cpu_before = recorder.cpu_busy_ms
    recorded_before = recorder.messages_recorded
    pid = system.spawn_program("metrics/send_to_self", args=(messages,), node=1)
    program = system.program_of(pid)
    _run_until(system, lambda: program.completed >= messages,
               max_ms=messages * 150.0 + 5000.0)
    recorded = recorder.messages_recorded - recorded_before
    cpu = recorder.cpu_busy_ms - cpu_before
    return {
        "path": path,
        "messages_recorded": float(recorded),
        "publish_cpu_ms_per_message": cpu / max(1, recorded),
    }
