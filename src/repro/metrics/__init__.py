"""Metering: the Chapter 5.2 measurement methodology.

Bart Miller's metering system gave the thesis its DEMOS/MP numbers; this
package provides the equivalent: CPU/real-time meters over a node, the
Figure 5.6 send-to-self measurement program, and the Figure 5.8
create/destroy measurement, each runnable with and without publishing.
"""

from repro.metrics.metering import (
    KernelMeter,
    MeterReading,
    measure_send_to_self,
    measure_create_destroy,
    measure_publishing_time,
)

__all__ = [
    "KernelMeter",
    "MeterReading",
    "measure_send_to_self",
    "measure_create_destroy",
    "measure_publishing_time",
]
