"""Exception hierarchy for the repro package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class NetworkError(ReproError):
    """A network component was configured or driven incorrectly."""


class KernelError(ReproError):
    """A DEMOS kernel call failed in a way the caller cannot recover from.

    Recoverable conditions (no message available, bad link id, ...) are
    reported through kernel-call condition codes, not exceptions; this
    exception signals misuse of the kernel API itself.
    """


class LinkError(KernelError):
    """An operation referenced a link id that does not exist or was moved."""


class ProcessError(KernelError):
    """A process operation referenced a dead or unknown process."""


class RecorderError(ReproError):
    """The publishing recorder detected an inconsistency."""


class RecordCorruptionError(RecorderError):
    """A logged record failed its checksum on a verified read.

    Raised by :class:`repro.publishing.store.ReplayCursor` when opened
    with ``verify=True``; the cursor position has already advanced past
    the bad record, so callers may skip it and keep reading.
    """


class QuorumDivergenceError(RecorderError):
    """Quorum replay could not reconcile the recorder streams."""


class RecoveryError(ReproError):
    """Process or recorder recovery could not make progress."""


class StorageError(ReproError):
    """Stable storage or the disk model rejected an operation."""


class TransactionError(ReproError):
    """A published transaction was aborted or misused."""


class QueueingModelError(ReproError):
    """The queuing model was configured with parameters it cannot solve."""


class PlacementError(ReproError):
    """A recorder placement was configured incoherently (overlapping
    ranges, recorder ids colliding with node ids, zero-node clusters)."""
