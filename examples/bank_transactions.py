"""Transactions without stable storage (§6.4).

A two-branch bank runs transfers under two-phase commit. The twist from
the thesis: the branches and the coordinator keep their intention lists
and transaction state in *plain process memory* — no stable storage
anywhere except the publishing recorder's. We crash a branch and the
coordinator mid-protocol; every transfer still commits or aborts
atomically, with balances conserved.

Run:  python examples/bank_transactions.py
"""

from repro import System, SystemConfig
from repro.txn import (
    COORDINATOR_IMAGE,
    RESOURCE_IMAGE,
    ResourceManager,
    TransactionCoordinator,
    TxnClient,
)


def main():
    system = System(SystemConfig(nodes=2))
    system.registry.register(RESOURCE_IMAGE, ResourceManager)
    system.registry.register(COORDINATOR_IMAGE, TransactionCoordinator)
    system.registry.register("bank/teller", TxnClient)
    system.boot()

    downtown = system.spawn_program(
        RESOURCE_IMAGE, args=(((("alice"), 500), (("carol"), 200)),), node=1)
    uptown = system.spawn_program(
        RESOURCE_IMAGE, args=(((("bob"), 100),),), node=2)
    coordinator = system.spawn_program(
        COORDINATOR_IMAGE, args=((tuple(downtown), tuple(uptown)),), node=1)
    system.run(300)

    transfers = [
        ("rent", ((0, "debit", "alice", 120), (1, "credit", "bob", 120))),
        ("loan", ((1, "debit", "bob", 50), (0, "credit", "carol", 50))),
        ("too-big", ((0, "debit", "carol", 9999),
                     (1, "credit", "bob", 9999))),      # must abort
        ("gift", ((0, "debit", "alice", 30), (1, "credit", "bob", 30))),
        ("fees", ((0, "debit", "carol", 10), (1, "credit", "bob", 10))),
    ]
    teller = system.spawn_program("bank/teller",
                                  args=(tuple(coordinator), tuple(transfers)),
                                  node=2)
    print("bank open: downtown {alice: 500, carol: 200}, uptown {bob: 100}")

    system.run(140)
    print("--- uptown branch crashes mid-protocol ---")
    system.crash_process(uptown)
    system.run(60)
    print("--- the coordinator crashes too ---")
    system.crash_process(coordinator)

    while True:
        client = system.program_of(teller)
        if client is not None and len(client.outcomes) >= len(transfers):
            break
        system.run(1000)

    outcomes = system.program_of(teller).outcomes
    down = system.program_of(downtown).data
    up = system.program_of(uptown).data
    print("\ntransaction outcomes:")
    for (name, _), (verdict, txn_id) in zip(transfers, outcomes):
        print(f"  {name:<8} -> {verdict} (txn {txn_id})")
    print(f"\nfinal balances: downtown {down}, uptown {up}")
    total = sum(down.values()) + sum(up.values())
    print(f"money conserved: {total} == 800: {total == 800}")
    print(f"pending intentions left anywhere: "
          f"{system.program_of(downtown).intentions or system.program_of(uptown).intentions}")

    assert [o[0] for o in outcomes] == [
        "committed", "committed", "aborted", "committed", "committed"]
    assert down == {"alice": 350, "carol": 240}
    assert up == {"bob": 210}
    assert total == 800


if __name__ == "__main__":
    main()
