"""Replay debugging from the published log (§6.5).

"One of the great problems of distributed debugging ... is finding out
what happened after the fact." Here a stateful pricing service develops
a (deliberate) bug that only corrupts its state after a particular input
pattern. Long after the damage is done, we attach the replay debugger to
the recorder's log, re-execute the service's history offline, and find
the exact step — and message — where the state first went wrong.

Run:  python examples/replay_debugging.py
"""

from repro import Program, System, SystemConfig
from repro.debugger import ReplayDebugger
from repro.demos.ids import ProcessId
from repro.demos.links import Link


class PricingService(Program):
    """Tracks a running price; has a subtle bug: a 'rebate' applied
    when the price is below 20 *subtracts twice*."""

    def __init__(self):
        super().__init__()
        self.price = 100
        self.history = []

    def on_message(self, ctx, m):
        body = m.body
        if not isinstance(body, tuple):
            return
        op, amount = body
        if op == "raise":
            self.price += amount
        elif op == "discount":
            self.price -= amount
        elif op == "rebate":
            self.price -= amount
            if self.price < 20:          # the bug: double-apply
                self.price -= amount
        self.history.append(self.price)


class Trader(Program):
    """Feeds a scripted sequence of pricing operations."""

    def __init__(self, service_pid, script):
        super().__init__()
        self.service_pid = tuple(service_pid)
        self.script = tuple(script)

    def attach_kernel(self, kernel):
        self._ctx_kernel = kernel

    def setup(self, ctx):
        pcb = self._ctx_kernel.processes[ctx.pid]
        link = self._ctx_kernel.forge_link(
            pcb, Link(dst=ProcessId(*self.service_pid)))
        for op in self.script:
            ctx.send(link, op)


SCRIPT = [
    ("raise", 10), ("discount", 30), ("discount", 25), ("rebate", 15),
    ("discount", 10), ("rebate", 12), ("raise", 5), ("discount", 3),
]


def main():
    system = System(SystemConfig(nodes=2))
    system.registry.register("demo/pricing", PricingService)
    system.registry.register("demo/trader", Trader)
    system.boot()

    service = system.spawn_program("demo/pricing", node=2)
    system.spawn_program("demo/trader",
                         args=(tuple(service), tuple(SCRIPT)), node=1)
    system.run(10_000)

    live = system.program_of(service)
    print(f"live service price after the day's trading: {live.price}")
    print("something is off — an analyst expected "
          f"{100 + sum(a if op == 'raise' else -a for op, a in SCRIPT)}.")

    print("\nAttaching the replay debugger to the published history...")
    record = system.recorder.db.get(service)
    debugger = ReplayDebugger(record, system.registry)

    # Conditional breakpoint: the first step where replayed state
    # diverges from the analyst's model.
    expected = [100]
    for op, amount in SCRIPT:
        expected.append(expected[-1] + (amount if op == "raise" else -amount))

    step_index = 0
    while True:
        step = debugger.step()
        if step is None:
            break
        step_index += 1
        modeled = expected[step_index]
        actual = debugger.program.price
        marker = "  <-- first divergence!" if actual != modeled else ""
        print(f"  step {step.step}: {step.message.body} -> price {actual} "
              f"(model says {modeled}){marker}")
        if actual != modeled:
            print(f"\nThe bug fires on {step.message.body} when the price "
                  f"drops below 20: it was applied twice.")
            break

    assert debugger.program.price != expected[step_index]
    assert step.message.body[0] == "rebate"


if __name__ == "__main__":
    main()
