"""The Chapter 1 motivator: a distributed exhaustive key search.

"Diffie and Hellman ... have shown how to break the NBS/DES standard
using a network of one million computers. A controlling computer
partitions the search space into [parts] and notifies each of the
others which part it must search. ... they expect that their system
would normally have a mean time between failure of 6 minutes. Since
they expect the system to take a full day to crack one code, this
reliability is unacceptable."

This example runs a (rather smaller) version of that computation on a
publishing cluster and crashes workers and whole nodes throughout. The
search still terminates with the right key and no partition is ever
searched twice or lost — the exact failure mode the thesis set out to
fix.

Run:  python examples/keysearch.py
"""

from repro import Program, System, SystemConfig
from repro.demos.ids import ProcessId
from repro.demos.links import Link

#: The "keyspace": find KEY in [0, SPACE). Workers check CHUNK keys per
#: work assignment and report back.
SPACE = 4096
KEY = 2977
CHUNK = 64


def key_matches(candidate: int) -> bool:
    """The (stand-in) cipher check — deterministic, pure."""
    return candidate == KEY


class Controller(Program):
    """Partitions the space and hands chunks to idle workers."""

    def __init__(self, worker_pids):
        super().__init__()
        self.worker_pids = tuple(tuple(w) for w in worker_pids)
        self.next_chunk = 0
        self.searched = []            # chunk starts completed
        self.found = None
        self.worker_links = []

    def attach_kernel(self, kernel):
        self._ctx_kernel = kernel

    def setup(self, ctx):
        pcb = self._ctx_kernel.processes[ctx.pid]
        for worker in self.worker_pids:
            link = self._ctx_kernel.forge_link(
                pcb, Link(dst=ProcessId(*worker)))
            self.worker_links.append(link)
        for index in range(len(self.worker_pids)):
            self._assign(ctx, index)

    def _assign(self, ctx, worker_index):
        if self.found is not None or self.next_chunk * CHUNK >= SPACE:
            return
        start = self.next_chunk * CHUNK
        self.next_chunk += 1
        reply = ctx.create_link(code=worker_index)
        ctx.send(self.worker_links[worker_index],
                 ("search", start, CHUNK), pass_link_id=reply)

    def on_message(self, ctx, m):
        body = m.body
        if not isinstance(body, tuple):
            return
        if body[0] == "result":
            _, start, found = body
            self.searched.append(start)
            if found is not None:
                self.found = found
            else:
                self._assign(ctx, m.code)


class Worker(Program):
    """Searches assigned chunks; deterministic and stateless between
    assignments (all state rides in the messages)."""

    handler_cpu_ms = 5.0     # "computation" is charged as CPU time

    def __init__(self):
        super().__init__()
        self.chunks_done = 0

    def on_message(self, ctx, m):
        body = m.body
        if isinstance(body, tuple) and body[0] == "search":
            _, start, count = body
            found = next((k for k in range(start, start + count)
                          if key_matches(k)), None)
            self.chunks_done += 1
            if m.passed_link_id is not None:
                ctx.send(m.passed_link_id, ("result", start, found))


def main():
    system = System(SystemConfig(nodes=3))
    system.registry.register("demo/worker", Worker)
    system.registry.register("demo/controller", Controller)
    system.boot()

    workers = [system.spawn_program("demo/worker", node=1 + i % 3)
               for i in range(6)]
    controller = system.spawn_program(
        "demo/controller", args=(tuple(tuple(w) for w in workers),), node=1)
    print(f"searching {SPACE} keys in {SPACE // CHUNK} chunks across "
          f"{len(workers)} workers on 3 nodes")

    # Inject failures while the search runs: single workers, then a
    # whole node (taking two workers and possibly the controller's
    # neighbours with it).
    system.run(400)
    system.crash_process(workers[2])
    print("crashed worker 3 (process fault)")
    system.run(400)
    system.crash_node(2)
    print("crashed node 2 (processor failure — watchdog will notice)")
    system.run(300)
    system.crash_process(workers[0])
    print("crashed worker 1 (process fault)")

    deadline = system.engine.now + 600_000
    while system.engine.now < deadline:
        program = system.program_of(controller)
        if program is not None and program.found is not None:
            break
        system.run(1000)

    program = system.program_of(controller)
    print(f"\nkey found: {program.found} (expected {KEY})")
    searched = sorted(program.searched)
    print(f"chunks completed: {len(searched)}; duplicates: "
          f"{len(searched) - len(set(searched))}")
    print(f"recoveries: {system.recovery.stats.recoveries_completed} "
          f"(replayed {system.recovery.stats.messages_replayed} messages)")
    assert program.found == KEY
    assert len(searched) == len(set(searched)), "no chunk reported twice"


if __name__ == "__main__":
    main()
