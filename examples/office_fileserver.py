"""The automated-office motivator (Chapter 1, the XEROX STAR figure).

An office file server holds documents; secretaries' and engineers'
workstations append edits through the named-link server rendezvous (the
real DEMOS pattern: the server registers a link, clients look it up).
The file-server node is then crashed. Publishing recovers the server —
checkpoint restore plus replay — and no edit is lost, duplicated, or
reordered, even the ones typed while the server was dead.

Run:  python examples/office_fileserver.py
"""

from repro import GeneratorProgram, Program, Recv, System, SystemConfig


class FileServer(Program):
    """Documents as append-only edit lists, served over links."""

    def __init__(self):
        super().__init__()
        self.documents = {}
        self.edits_applied = 0

    def setup(self, ctx):
        service = ctx.create_link(channel=0)
        ctx.send(1, ("register", "file_server"), pass_link_id=service)

    def on_message(self, ctx, m):
        body = m.body
        if not isinstance(body, tuple):
            return
        if body[0] == "append":
            _, name, text = body
            self.documents.setdefault(name, []).append(text)
            self.edits_applied += 1
            if m.passed_link_id is not None:
                ctx.send(m.passed_link_id,
                         ("saved", name, len(self.documents[name])))
        elif body[0] == "read" and m.passed_link_id is not None:
            ctx.send(m.passed_link_id,
                     ("contents", body[1],
                      tuple(self.documents.get(body[1], ()))))


class Workstation(GeneratorProgram):
    """A user's machine: looks up the file server, appends edits."""

    def __init__(self, user, document, lines):
        super().__init__()
        self.user = user
        self.document = document
        self.lines = tuple(lines)
        self.acks = []

    def run(self, ctx):
        lookup = ctx.create_link(channel=3)
        ctx.send(1, ("lookup", "file_server"), pass_link_id=lookup)
        m = yield Recv.on(3)
        server = m.passed_link_id
        for line in self.lines:
            reply = ctx.create_link(channel=4)
            ctx.send(server, ("append", self.document,
                              f"{self.user}: {line}"), pass_link_id=reply)
            m = yield Recv.on(4)
            self.acks.append(m.body[2])


def main():
    system = System(SystemConfig(nodes=3))
    system.registry.register("office/file_server", FileServer)
    system.registry.register("office/workstation", Workstation)
    system.boot()

    server = system.spawn_program("office/file_server", node=3,
                                  state_pages=8)
    users = [
        ("alice", "quarterly-report", [f"paragraph {i}" for i in range(1, 21)]),
        ("bob", "quarterly-report", [f"figure {i}" for i in range(1, 15)]),
        ("carol", "memo", [f"item {i}" for i in range(1, 13)]),
    ]
    stations = [system.spawn_program("office/workstation",
                                     args=user, node=1 + i % 2)
                for i, user in enumerate(users)]
    print("file server on node 3; workstations on nodes 1 and 2")

    system.run(900)
    served = system.program_of(server)
    print(f"t={system.engine.now:.0f} ms: {served.edits_applied} edits "
          f"applied; checkpointing the server")
    system.checkpoint(server)
    system.run(400)

    print("\n--- crashing the file-server node ---")
    system.crash_node(3)

    total_lines = sum(len(u[2]) for u in users)
    while True:
        done = all(len(system.program_of(s).acks)
                   == len(users[i][2]) for i, s in enumerate(stations))
        if done and system.process_state(server) == "running":
            break
        system.run(1000)

    served = system.program_of(server)
    report = served.documents["quarterly-report"]
    memo = served.documents["memo"]
    print(f"\nall {total_lines} edits acknowledged")
    print(f"'quarterly-report': {len(report)} lines; 'memo': {len(memo)} lines")
    alice_lines = [l for l in report if l.startswith("alice:")]
    print(f"alice's paragraphs in order: "
          f"{alice_lines == [f'alice: paragraph {i}' for i in range(1, 21)]}")
    print(f"no duplicates: {len(report) == len(set(report))}")
    print(f"recoveries completed: "
          f"{system.recovery.stats.recoveries_completed}")
    assert len(report) + len(memo) == total_lines
    assert len(set(report)) == len(report)
    # Per-user acks are the document lengths they observed: strictly
    # increasing — nothing was lost or applied twice.
    for i, station in enumerate(stations):
        acks = system.program_of(station).acks
        assert acks == sorted(acks)


if __name__ == "__main__":
    main()
