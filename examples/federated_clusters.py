"""LAN clusters with autonomous recovery (§6.2).

"Many LAN's are now attached to other LAN's via general topology store
and forward networks. ... a recorder can be attached to each cluster to
perform recovery for that cluster alone. The great advantage to this
scheme is autonomous control."

Two campus LANs, each with its own recorder, joined by store-and-forward
gateways. A directory service in cluster B serves clients in cluster A;
cluster B's node crashes and is recovered by *its own* recorder — the
other cluster's recovery machinery never stirs, yet cross-cluster
requests resume exactly where they left off.

Run:  python examples/federated_clusters.py
"""

from repro import Program
from repro.cluster import ClusterFederation
from repro.demos.ids import ProcessId
from repro.demos.links import Link


class Directory(Program):
    """A lookup service with registrations as process state."""

    def __init__(self, entries=()):
        super().__init__()
        self.entries = {k: v for k, v in entries}
        self.lookups = 0

    def on_message(self, ctx, m):
        body = m.body
        if not isinstance(body, tuple):
            return
        if body[0] == "lookup" and m.passed_link_id is not None:
            self.lookups += 1
            ctx.send(m.passed_link_id,
                     ("entry", body[1], self.entries.get(body[1])))
        elif body[0] == "register":
            self.entries[body[1]] = body[2]


class Client(Program):
    """Queries the remote directory for a scripted list of names."""

    def __init__(self, directory_pid, names):
        super().__init__()
        self.directory_pid = tuple(directory_pid)
        self.names = tuple(names)
        self.index = 0
        self.answers = []

    def attach_kernel(self, kernel):
        self._ctx_kernel = kernel

    def setup(self, ctx):
        pcb = self._ctx_kernel.processes[ctx.pid]
        self.link = self._ctx_kernel.forge_link(
            pcb, Link(dst=ProcessId(*self.directory_pid)))
        self._ask(ctx)

    def _ask(self, ctx):
        if self.index < len(self.names):
            name = self.names[self.index]
            self.index += 1
            reply = ctx.create_link(code=2)
            ctx.send(self.link, ("lookup", name), pass_link_id=reply)

    def on_message(self, ctx, m):
        if isinstance(m.body, tuple) and m.body[0] == "entry":
            self.answers.append((m.body[1], m.body[2]))
            self._ask(ctx)


ENTRIES = tuple((f"host{i}", f"10.0.1.{i}") for i in range(1, 9))
QUERIES = tuple(f"host{1 + i % 8}" for i in range(30))


def main():
    fed = ClusterFederation([2, 1])
    campus_a, campus_b = fed.clusters
    for cluster in fed.clusters:
        cluster.registry.register("fed/directory", Directory)
        cluster.registry.register("fed/client", Client)
    fed.boot()
    print(f"campus A nodes: {sorted(campus_a.nodes)}  "
          f"campus B nodes: {sorted(campus_b.nodes)}")

    directory = campus_b.spawn_program("fed/directory", args=(ENTRIES,),
                                       node=101)
    client = campus_a.spawn_program("fed/client",
                                    args=(tuple(directory), QUERIES), node=2)
    fed.run(1200)
    answered = len(campus_a.program_of(client).answers)
    print(f"t={fed.engine.now:.0f} ms: {answered} cross-cluster lookups done")

    print("\n--- campus B's server node fails ---")
    campus_b.crash_node(101)

    while len(campus_a.program_of(client).answers) < len(QUERIES):
        fed.run(1000)

    answers = campus_a.program_of(client).answers
    print(f"\nall {len(answers)} lookups answered")
    correct = all(value == f"10.0.1.{name[4:]}" for name, value in answers)
    print(f"every answer correct: {correct}")
    print(f"campus B recoveries: "
          f"{campus_b.recovery.stats.node_crashes_detected} node crash, "
          f"{campus_b.recovery.stats.recoveries_completed} processes")
    print(f"campus A recoveries: "
          f"{campus_a.recovery.stats.recoveries_started} (autonomy: its "
          f"recorder never acted)")
    assert correct
    assert campus_a.recovery.stats.recoveries_started == 0


if __name__ == "__main__":
    main()
