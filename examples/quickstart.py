"""Quickstart: transparent process recovery in five minutes.

Builds a two-node DEMOS/MP cluster with a publishing recorder, runs a
client/server workload, kills the server mid-stream — and shows that
the client sees exactly the same replies it would have seen without the
crash. Neither program contains a line of recovery code.

Run:  python examples/quickstart.py
"""

from repro import Program, System, SystemConfig
from repro.demos.ids import ProcessId
from repro.demos.links import Link


class Accumulator(Program):
    """The server: adds values, replies with the running total."""

    def __init__(self):
        super().__init__()
        self.total = 0

    def on_message(self, ctx, m):
        if isinstance(m.body, tuple) and m.body[0] == "add":
            self.total += m.body[1]
            if m.passed_link_id is not None:
                ctx.send(m.passed_link_id, ("total", self.total))


class Client(Program):
    """The client: sends 1, 2, 3, ... waiting for each reply."""

    def __init__(self, server_pid, n):
        super().__init__()
        self.server_pid = tuple(server_pid)
        self.n = n
        self.i = 0
        self.replies = []

    def attach_kernel(self, kernel):
        self._ctx_kernel = kernel

    def setup(self, ctx):
        pcb = self._ctx_kernel.processes[ctx.pid]
        self.server_link = self._ctx_kernel.forge_link(
            pcb, Link(dst=ProcessId(*self.server_pid)))
        self._send_next(ctx)

    def _send_next(self, ctx):
        if self.i < self.n:
            self.i += 1
            reply = ctx.create_link(code=1)
            ctx.send(self.server_link, ("add", self.i), pass_link_id=reply)

    def on_message(self, ctx, m):
        if isinstance(m.body, tuple) and m.body[0] == "total":
            self.replies.append(m.body[1])
            self._send_next(ctx)


def main():
    system = System(SystemConfig(nodes=2))
    system.registry.register("demo/accumulator", Accumulator)
    system.registry.register("demo/client", Client)
    system.boot()

    server = system.spawn_program("demo/accumulator", node=2)
    client = system.spawn_program("demo/client",
                                  args=(tuple(server), 40), node=1)
    print(f"server {server} on node 2, client {client} on node 1")

    system.run(1500)
    print(f"t={system.engine.now:.0f} ms: "
          f"{len(system.program_of(client).replies)} replies so far")

    print("\n--- killing the server mid-stream ---")
    system.crash_process(server)

    # Keep running; the watchdog/crash-report path, the recovery manager,
    # and message replay do the rest. No application code is involved.
    while len(system.program_of(client).replies) < 40:
        system.run(1000)

    replies = system.program_of(client).replies
    expected = [sum(range(1, k + 1)) for k in range(1, 41)]
    print(f"\nclient received {len(replies)} replies")
    print(f"exactly the crash-free sequence: {replies == expected}")
    print(f"recoveries completed: {system.recovery.stats.recoveries_completed}")
    print(f"messages replayed:    {system.recovery.stats.messages_replayed}")
    print(f"server total:         {system.program_of(server).total} "
          f"(= 1+2+...+40 = {sum(range(1, 41))})")
    assert replies == expected


if __name__ == "__main__":
    main()
